//! The [`Path`] type: an explicit vertex sequence through a graph.
//!
//! Paths are how the workspace records routes taken by packets and the paths
//! realising hopset edges (Property 1 in the paper). A path always stores its
//! vertices in order; its weighted length and hop count are derived from the
//! graph it is validated against.

use crate::graph::WeightedGraph;
use crate::types::{dist_add, Dist, NodeId};

/// An explicit path `v_0, v_1, …, v_t` through a graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Path {
    nodes: Vec<NodeId>,
}

impl Path {
    /// Creates a path from an ordered vertex sequence.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        Path { nodes }
    }

    /// A path consisting of a single vertex (zero hops).
    pub fn trivial(node: NodeId) -> Self {
        Path { nodes: vec![node] }
    }

    /// A single-vertex path with room reserved for `expected_hops` more
    /// vertices — the forwarding hot loop grows a path one hop at a time,
    /// and pre-sizing skips the doubling reallocations.
    pub fn trivial_with_capacity(node: NodeId, expected_hops: usize) -> Self {
        let mut nodes = Vec::with_capacity(expected_hops + 1);
        nodes.push(node);
        Path { nodes }
    }

    /// The ordered vertices of the path.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The first vertex, if the path is non-empty.
    pub fn source(&self) -> Option<NodeId> {
        self.nodes.first().copied()
    }

    /// The last vertex, if the path is non-empty.
    pub fn target(&self) -> Option<NodeId> {
        self.nodes.last().copied()
    }

    /// Number of hops (edges) on the path.
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Returns `true` if the path has no vertices at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Appends a vertex to the end of the path.
    pub fn push(&mut self, node: NodeId) {
        self.nodes.push(node);
    }

    /// Checks that every consecutive pair is an edge of `g`.
    pub fn is_valid_in(&self, g: &WeightedGraph) -> bool {
        self.nodes
            .windows(2)
            .all(|w| w[0] < g.num_nodes() && g.has_edge(w[0], w[1]))
            && self.nodes.iter().all(|&v| v < g.num_nodes())
    }

    /// Weighted length of the path in `g`, or `None` if some consecutive pair
    /// is not an edge of `g`.
    pub fn length_in(&self, g: &WeightedGraph) -> Option<Dist> {
        let mut total: Dist = 0;
        for w in self.nodes.windows(2) {
            let weight = g.edge_weight(w[0], w[1])?;
            total = dist_add(total, weight);
        }
        Some(total)
    }

    /// Reverses the path in place.
    pub fn reverse(&mut self) {
        self.nodes.reverse();
    }

    /// Concatenates `other` onto `self`, dropping `other`'s first vertex if it
    /// equals `self`'s last (so `a→b` + `b→c` becomes `a→b→c`).
    pub fn concat(&self, other: &Path) -> Path {
        let mut nodes = self.nodes.clone();
        let mut rest = other.nodes.as_slice();
        if let (Some(&last), Some(&first)) = (nodes.last(), rest.first()) {
            if last == first {
                rest = &rest[1..];
            }
        }
        nodes.extend_from_slice(rest);
        Path { nodes }
    }
}

impl From<Vec<NodeId>> for Path {
    fn from(nodes: Vec<NodeId>) -> Self {
        Path::new(nodes)
    }
}

impl FromIterator<NodeId> for Path {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        Path::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WeightedGraph;

    fn line() -> WeightedGraph {
        WeightedGraph::from_edges(4, [(0, 1, 2), (1, 2, 3), (2, 3, 4)]).unwrap()
    }

    #[test]
    fn trivial_path_has_zero_hops_and_zero_length() {
        let g = line();
        let p = Path::trivial(2);
        assert_eq!(p.hops(), 0);
        assert_eq!(p.length_in(&g), Some(0));
        assert_eq!(p.source(), Some(2));
        assert_eq!(p.target(), Some(2));
        assert!(p.is_valid_in(&g));
    }

    #[test]
    fn valid_path_length_sums_weights() {
        let g = line();
        let p = Path::new(vec![0, 1, 2, 3]);
        assert!(p.is_valid_in(&g));
        assert_eq!(p.hops(), 3);
        assert_eq!(p.length_in(&g), Some(9));
    }

    #[test]
    fn invalid_path_detected() {
        let g = line();
        let p = Path::new(vec![0, 2]);
        assert!(!p.is_valid_in(&g));
        assert_eq!(p.length_in(&g), None);
        let p2 = Path::new(vec![0, 9]);
        assert!(!p2.is_valid_in(&g));
    }

    #[test]
    fn concat_merges_shared_endpoint() {
        let a = Path::new(vec![0, 1, 2]);
        let b = Path::new(vec![2, 3]);
        assert_eq!(a.concat(&b).nodes(), &[0, 1, 2, 3]);
        let c = Path::new(vec![3]);
        assert_eq!(a.concat(&c).nodes(), &[0, 1, 2, 3]);
    }

    #[test]
    fn reverse_and_push() {
        let mut p = Path::new(vec![0, 1]);
        p.push(2);
        p.reverse();
        assert_eq!(p.nodes(), &[2, 1, 0]);
    }

    #[test]
    fn empty_path_behaviour() {
        let p = Path::default();
        assert!(p.is_empty());
        assert_eq!(p.hops(), 0);
        assert_eq!(p.source(), None);
        assert_eq!(p.target(), None);
    }

    #[test]
    fn from_iterator_collects() {
        let p: Path = (0..3).collect();
        assert_eq!(p.nodes(), &[0, 1, 2]);
    }
}
