//! Property-based tests for the graph substrate.

use proptest::prelude::*;

use en_graph::bellman_ford::{
    hop_bounded_distances, hop_bounded_distances_reference, shortest_path_diameter,
};
use en_graph::bfs::{bfs, connected_components, hop_diameter, hop_diameter_estimate, is_connected};
use en_graph::dijkstra::{dijkstra, multi_source_dijkstra};
use en_graph::generators::*;
use en_graph::tree::RootedTree;
use en_graph::{is_finite, CsrGraph, Neighbor, Path, WeightedGraph, INFINITY};

fn arb_connected_graph() -> impl Strategy<Value = WeightedGraph> {
    (5usize..60, 0u64..10_000, 1u64..500).prop_map(|(n, seed, max_w)| {
        erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, max_w), 0.15)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    #[test]
    fn generated_graphs_are_connected_and_weights_in_range(g in arb_connected_graph()) {
        prop_assert!(is_connected(&g));
        prop_assert!(g.edges().all(|e| e.weight >= 1 && e.weight <= 500));
        prop_assert_eq!(connected_components(&g).len(), 1);
    }

    #[test]
    fn dijkstra_satisfies_triangle_inequality_over_edges(g in arb_connected_graph()) {
        let sp = dijkstra(&g, 0);
        for e in g.edges() {
            prop_assert!(sp.dist[e.v] <= sp.dist[e.u].saturating_add(e.weight));
            prop_assert!(sp.dist[e.u] <= sp.dist[e.v].saturating_add(e.weight));
        }
    }

    #[test]
    fn dijkstra_paths_have_matching_lengths(g in arb_connected_graph()) {
        let sp = dijkstra(&g, 0);
        for v in g.nodes() {
            let p = sp.path_to(v).expect("connected graph");
            prop_assert!(p.is_valid_in(&g));
            prop_assert_eq!(p.length_in(&g), Some(sp.dist[v]));
            prop_assert_eq!(p.hops(), sp.hops[v]);
        }
    }

    #[test]
    fn multi_source_is_min_of_single_sources(g in arb_connected_graph(), s1 in 0usize..60, s2 in 0usize..60) {
        let n = g.num_nodes();
        let (a, b) = (s1 % n, s2 % n);
        let (multi, _) = multi_source_dijkstra(&g, &[a, b]);
        let da = dijkstra(&g, a).dist;
        let db = dijkstra(&g, b).dist;
        for v in g.nodes() {
            prop_assert_eq!(multi[v], da[v].min(db[v]));
        }
    }

    #[test]
    fn hop_bounded_never_below_true_distance(g in arb_connected_graph(), t in 0usize..10) {
        let sp = dijkstra(&g, 0);
        let hb = hop_bounded_distances(&g, 0, t);
        for v in g.nodes() {
            prop_assert!(hb.dist[v] >= sp.dist[v]);
            if is_finite(hb.dist[v]) {
                prop_assert!(hb.dist[v] < INFINITY);
            }
        }
    }

    #[test]
    fn bfs_levels_are_lipschitz_across_edges(g in arb_connected_graph()) {
        let r = bfs(&g, 0);
        for e in g.edges() {
            let (hu, hv) = (r.hops[e.u] as i64, r.hops[e.v] as i64);
            prop_assert!((hu - hv).abs() <= 1);
        }
    }

    #[test]
    fn diameter_estimate_within_factor_two(g in arb_connected_graph()) {
        let exact = hop_diameter(&g);
        let estimate = hop_diameter_estimate(&g);
        prop_assert!(estimate <= exact);
        prop_assert!(2 * estimate >= exact);
        prop_assert!(shortest_path_diameter(&g) >= exact);
    }

    #[test]
    fn shortest_path_tree_reproduces_distances(g in arb_connected_graph(), root in 0usize..60) {
        let root = root % g.num_nodes();
        let sp = dijkstra(&g, root);
        let tree = RootedTree::from_shortest_paths(&g, &sp);
        prop_assert!(tree.is_subgraph_of(&g));
        let dists = tree.root_distances();
        for v in g.nodes() {
            prop_assert_eq!(dists[v], Some(sp.dist[v]));
        }
        prop_assert_eq!(tree.len(), g.num_nodes());
    }

    #[test]
    fn tree_paths_are_symmetric_in_length(g in arb_connected_graph(), a in 0usize..60, b in 0usize..60) {
        let n = g.num_nodes();
        let (a, b) = (a % n, b % n);
        let tree = RootedTree::from_shortest_paths(&g, &dijkstra(&g, 0));
        let ab = tree.tree_distance(a, b).unwrap();
        let ba = tree.tree_distance(b, a).unwrap();
        prop_assert_eq!(ab, ba);
        let path = tree.tree_path(a, b).unwrap();
        prop_assert_eq!(path.source(), Some(a));
        prop_assert_eq!(path.target(), Some(b));
    }

    #[test]
    fn path_concat_preserves_length(nodes_a in proptest::collection::vec(0usize..20, 1..6),
                                    nodes_b in proptest::collection::vec(0usize..20, 1..6)) {
        // Build a complete graph so any vertex sequence is a valid path.
        let g = complete(&GeneratorConfig::new(20, 1).with_weights(1, 9));
        let mut a_nodes = nodes_a;
        a_nodes.dedup();
        let mut b_nodes = nodes_b;
        b_nodes.dedup();
        let a = Path::new(a_nodes.clone());
        let b = Path::new(b_nodes.clone());
        if a.is_valid_in(&g) && b.is_valid_in(&g) && a.target() == b.source() {
            let joined = a.concat(&b);
            prop_assert!(joined.is_valid_in(&g));
            prop_assert_eq!(
                joined.length_in(&g).unwrap(),
                a.length_in(&g).unwrap() + b.length_in(&g).unwrap()
            );
        }
    }

    #[test]
    fn structured_generators_have_expected_edge_counts(n in 4usize..40, seed in 0u64..100) {
        let tree = random_tree(&GeneratorConfig::new(n, seed));
        prop_assert_eq!(tree.num_edges(), n - 1);
        prop_assert!(is_connected(&tree));
        let p = path(&GeneratorConfig::new(n, seed));
        prop_assert_eq!(p.num_edges(), n - 1);
        let s = star(&GeneratorConfig::new(n, seed));
        prop_assert_eq!(s.num_edges(), n - 1);
        if n >= 3 {
            let r = ring(&GeneratorConfig::new(n, seed));
            prop_assert_eq!(r.num_edges(), n);
        }
    }

    #[test]
    fn csr_neighbors_agree_with_adjacency_lists(g in arb_connected_graph()) {
        let csr = CsrGraph::from_graph(&g);
        prop_assert_eq!(csr.num_nodes(), g.num_nodes());
        prop_assert_eq!(csr.num_edges(), g.num_edges());
        for v in g.nodes() {
            prop_assert_eq!(csr.degree(v), g.degree(v));
            let from_csr: Vec<Neighbor> = csr.neighbors(v).collect();
            prop_assert_eq!(from_csr.as_slice(), g.neighbors(v), "vertex {}", v);
            let (targets, weights) = csr.arcs(v);
            for (port, nb) in g.neighbors(v).iter().enumerate() {
                prop_assert_eq!(targets[port], nb.node);
                prop_assert_eq!(weights[port], nb.weight);
            }
        }
    }

    #[test]
    fn frontier_hop_bounded_matches_naive_reference(g in arb_connected_graph(), t in 0usize..12, src in 0usize..60) {
        let src = src % g.num_nodes();
        let frontier = hop_bounded_distances(&g, src, t);
        let naive = hop_bounded_distances_reference(&g, src, t);
        prop_assert_eq!(&frontier.dist, &naive.dist);
        // Parents may differ on ties but must always be Remark-1 consistent.
        for v in g.nodes() {
            if let Some(p) = frontier.parent[v] {
                let w = g.edge_weight(v, p).expect("parent must be a neighbour");
                prop_assert!(frontier.dist[v] >= w + frontier.dist[p], "vertex {}", v);
            } else {
                prop_assert!(v == src || !is_finite(frontier.dist[v]));
            }
        }
    }
}
