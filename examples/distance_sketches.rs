//! Distance estimation (Section 5): every node keeps an `O(n^{1/k} log n)`-word
//! sketch, and any two sketches alone determine a `(2k−1+o(1))`-approximate
//! distance in `O(k)` time — e.g. for server selection or overlay
//! neighbour picking without any routing.
//!
//! Run with: `cargo run --release -p en_bench --example distance_sketches`

use en_graph::dijkstra::dijkstra;
use en_graph::generators::{random_geometric_connected, GeneratorConfig};
use en_routing::construction::{build_routing_scheme, ConstructionConfig};
use en_routing::RoutingError;

fn main() -> Result<(), RoutingError> {
    // A mesh-like geometric network (think: a metro-area wireless deployment).
    let n = 250;
    let k = 3;
    let graph = random_geometric_connected(&GeneratorConfig::new(n, 11).with_weights(1, 100), 0.12);
    println!(
        "geometric network: {} nodes, {} links",
        graph.num_nodes(),
        graph.num_edges()
    );

    let built = build_routing_scheme(&graph, &ConstructionConfig::new(k, 11))?;
    let oracle = &built.sketches;
    println!(
        "sketches: max {} words, avg {:.1} words (bound O(n^(1/k) log n)); stretch bound {:.2}",
        oracle.max_sketch_words(),
        oracle.avg_sketch_words(),
        built.params.sketch_stretch_bound()
    );

    // Server selection: node 0 picks the closest of five candidate servers
    // using sketches only, then we check how good the pick was.
    let client = 0;
    let servers = [37, 81, 120, 199, 249];
    let mut best_by_sketch = servers[0];
    let mut best_estimate = u64::MAX;
    println!(
        "\n{:>8} {:>12} {:>12} {:>9}",
        "server", "estimate", "true dist", "ratio"
    );
    let sp = dijkstra(&graph, client);
    for &s in &servers {
        let est = oracle.query(client, s)?;
        let truth = sp.dist[s];
        println!(
            "{:>8} {:>12} {:>12} {:>9.3}",
            s,
            est.estimate,
            truth,
            est.estimate as f64 / truth.max(1) as f64
        );
        if est.estimate < best_estimate {
            best_estimate = est.estimate;
            best_by_sketch = s;
        }
    }
    let true_best = servers
        .iter()
        .copied()
        .min_by_key(|&s| sp.dist[s])
        .expect("non-empty server list");
    println!(
        "\nsketch-based pick: server {best_by_sketch}; true nearest: server {true_best} \
         (picked distance {} vs optimal {})",
        sp.dist[best_by_sketch], sp.dist[true_best]
    );
    Ok(())
}
