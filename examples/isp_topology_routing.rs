//! Routing on a two-tier ISP-like topology — the scenario that motivates
//! compact routing: thousands of access routers, a small redundant core, and
//! per-router memory that must stay tiny.
//!
//! The example compares the paper's scheme against the Lenzen–Patt-Shamir
//! style landmark baseline (whose tables are Θ(√n) regardless of k) and the
//! centralized Thorup–Zwick baseline on the same topology.
//!
//! Run with: `cargo run --release -p en_bench --example isp_topology_routing`

use en_graph::bfs::hop_diameter_estimate;
use en_graph::generators::{two_tier_isp, GeneratorConfig};
use en_routing::baselines::landmark::build_landmark_baseline;
use en_routing::baselines::tz::build_tz_baseline;
use en_routing::construction::{build_routing_scheme, ConstructionConfig};
use en_routing::stretch::measure_stretch_sampled;
use en_routing::RoutingError;

fn main() -> Result<(), RoutingError> {
    let n = 300;
    let k = 4;
    let seed = 7;
    // 10% of the routers form the densely connected core; the rest are access
    // routers hanging off it in trees.
    let graph = two_tier_isp(&GeneratorConfig::new(n, seed).with_weights(1, 50), 0.1);
    let d = hop_diameter_estimate(&graph);
    println!(
        "ISP topology: {} routers, {} links, hop-diameter ~{}",
        graph.num_nodes(),
        graph.num_edges(),
        d
    );

    let ours = build_routing_scheme(&graph, &ConstructionConfig::new(k, seed))?;
    let tz = build_tz_baseline(&graph, k, seed)?;
    let landmark = build_landmark_baseline(&graph, k, seed, d)?;

    println!(
        "\n{:<26} {:>12} {:>12} {:>12} {:>10}",
        "scheme", "rounds", "tbl max(w)", "tbl avg(w)", "stretch"
    );
    for (name, rounds, max_t, avg_t, scheme) in [
        (
            "this paper (distributed)",
            ours.total_rounds(),
            ours.scheme.max_table_words(),
            ours.scheme.avg_table_words(),
            &ours.scheme,
        ),
        (
            "TZ01 (centralized)",
            tz.ledger.total_rounds(),
            tz.scheme.max_table_words(),
            tz.scheme.avg_table_words(),
            &tz.scheme,
        ),
        (
            "LP13-style landmarks",
            landmark.ledger.total_rounds(),
            landmark.scheme.max_table_words(),
            landmark.scheme.avg_table_words(),
            &landmark.scheme,
        ),
    ] {
        let stretch = measure_stretch_sampled(&graph, scheme, 400, 99);
        println!(
            "{:<26} {:>12} {:>12} {:>12.1} {:>10.3}",
            name, rounds, max_t, avg_t, stretch.avg_stretch
        );
    }

    // Trace one access-to-access packet in detail.
    let outcome = ours.scheme.route(&graph, n - 1, n - 7)?;
    println!(
        "\nexample access-to-access packet {} -> {}: path {:?}",
        n - 1,
        n - 7,
        outcome.path.nodes()
    );
    println!(
        "length {} vs shortest {} (stretch {:.3}), routed through the level-{} tree of router {}",
        outcome.length, outcome.exact, outcome.stretch, outcome.level, outcome.tree_root
    );
    Ok(())
}
