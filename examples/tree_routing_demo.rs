//! The Section 6 building block on its own: exact (stretch-1) routing in a
//! tree with O(log n)-word tables and O(log² n)-word labels, built around a
//! √n-size portal sample so the distributed construction needs only
//! Õ(√n + D) rounds instead of Θ(depth).
//!
//! Run with: `cargo run --release -p en_bench --example tree_routing_demo`

use en_graph::dijkstra::dijkstra;
use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
use en_graph::tree::RootedTree;
use en_tree_routing::{theorem7_rounds, TreeRoutingConfig, TreeRoutingScheme};

fn main() {
    // Take the shortest-path tree of a random network — exactly the kind of
    // tree (a cluster tree) the full scheme routes on.
    let n = 400;
    let graph = erdos_renyi_connected(
        &GeneratorConfig::new(n, 21).with_weights(1, 100),
        8.0 / n as f64,
    );
    let root = 0;
    let spt = RootedTree::from_shortest_paths(&graph, &dijkstra(&graph, root));
    println!(
        "shortest-path tree rooted at {root}: {} vertices, depth {}",
        spt.len(),
        spt.depth()
    );

    // Two-level scheme with the paper's portal sample (γ = √n)...
    let two_level = TreeRoutingScheme::build(&spt, &TreeRoutingConfig::new(5));
    // ...and the classic single-level Thorup–Zwick scheme for comparison.
    let single_level = TreeRoutingScheme::build(&spt, &TreeRoutingConfig::single_level());

    println!(
        "\ntwo-level:   {} portals, tables ≤ {} words, labels ≤ {} words, ~{} construction rounds (D=10)",
        two_level.portals().len(),
        two_level.max_table_words(),
        two_level.max_label_words(),
        two_level.construction_rounds(10)
    );
    println!(
        "single-level: {} portal,  tables ≤ {} words, labels ≤ {} words, but needs Θ(depth) = {} rounds naively",
        single_level.portals().len(),
        single_level.max_table_words(),
        single_level.max_label_words(),
        spt.depth()
    );
    println!(
        "Theorem 7 round charge at n={n}: {}",
        theorem7_rounds(n, 10)
    );

    // Route a packet and verify it follows the unique tree path exactly.
    let (src, dst) = (n - 1, n / 2);
    let route = two_level
        .route(src, dst)
        .expect("both endpoints are in the tree");
    let tree_path = spt.tree_path(src, dst).expect("unique tree path exists");
    println!(
        "\npacket {src} -> {dst}: {} hops, identical to the tree path: {}",
        route.hops(),
        route == tree_path
    );
    assert_eq!(route, tree_path, "tree routing must have stretch exactly 1");
}
