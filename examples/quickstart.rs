//! Quickstart: build the paper's routing scheme on a random network, route a
//! few packets, and query the distance-estimation sketches.
//!
//! Run with: `cargo run --release -p en_bench --example quickstart`

use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
use en_routing::construction::{build_routing_scheme_with, ConstructionConfig};
use en_routing::{BuildOptions, RoutingError};

fn main() -> Result<(), RoutingError> {
    // A reproducible random network: 200 routers, average degree ~8,
    // integer weights (e.g. link latencies) in 1..=100.
    let n = 200;
    let graph = erdos_renyi_connected(
        &GeneratorConfig::new(n, 42).with_weights(1, 100),
        8.0 / n as f64,
    );
    println!(
        "network: {} vertices, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Build the compact routing scheme with k = 3 (stretch at most 4k-5 = 7),
    // sharded over the host's cores. The thread count never changes the
    // output — the parallel build is bit-identical to `threads = 1` — so
    // this example is reproducible on any machine.
    let config = ConstructionConfig::new(3, 42);
    let opts = BuildOptions::default();
    let built = build_routing_scheme_with(&graph, &config, &opts)?;
    println!(
        "construction charged {} CONGEST rounds over {} phases (hop-diameter ~{})",
        built.total_rounds(),
        built.ledger.len(),
        built.hop_diameter
    );
    println!(
        "parallel build: {} worker slots over {} requested threads swept {} sources \
         and produced {} members",
        built.build_stats.threads_used(),
        opts.threads,
        built.build_stats.total_sources(),
        built.build_stats.total_members()
    );
    println!(
        "routing tables: max {} words, avg {:.1} words; labels: max {} words",
        built.scheme.max_table_words(),
        built.scheme.avg_table_words(),
        built.scheme.max_label_words()
    );

    // Route a few packets and report their stretch.
    for (src, dst) in [(0, 150), (17, 99), (42, 183)] {
        let outcome = built.scheme.route(&graph, src, dst)?;
        println!(
            "packet {src} -> {dst}: {} hops, length {}, shortest {}, stretch {:.3} (via level-{} tree rooted at {})",
            outcome.path.hops(),
            outcome.length,
            outcome.exact,
            outcome.stretch,
            outcome.level,
            outcome.tree_root
        );
    }

    // Distance estimation from the sketches alone (no routing, no graph access).
    let estimate = built.sketches.query(0, 150)?;
    println!(
        "sketch-based distance estimate for (0, 150): {} in {} iterations (sketch size: max {} words)",
        estimate.estimate,
        estimate.iterations,
        built.sketches.max_sketch_words()
    );

    // The phase-by-phase round ledger, exactly as the paper's analysis charges it.
    println!("\nround ledger:\n{}", built.ledger);
    Ok(())
}
