//! The serving path end to end: build a routing scheme, flatten it to a
//! snapshot file, load it back **zero-copy**, and route packets off the
//! flat columns — comparing the header's word accounting against the
//! paper's Table-1 `O(n^{1/k} log² n)` table bound along the way.
//!
//! Run with: `cargo run --release -p en_bench --example snapshot_roundtrip`

use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
use en_routing::construction::{build_routing_scheme, ConstructionConfig};
use en_wire::{generate_pairs, FlatScheme, PairWorkload, QueryEngine};

fn main() {
    let (n, k) = (1000usize, 3usize);
    let g = erdos_renyi_connected(
        &GeneratorConfig::new(n, 42).with_weights(1, 100),
        8.0 / n as f64,
    );
    println!("building the k={k} scheme on n={n}…");
    let built = build_routing_scheme(&g, &ConstructionConfig::new(k, 42)).unwrap();

    // --- Snapshot: one relocatable little-endian buffer ---------------------
    let bytes = en_wire::serialize(&built.scheme);
    let path = std::path::Path::new("target").join("scheme.bin");
    std::fs::write(&path, &bytes).expect("write snapshot");
    println!(
        "snapshot written to {}: {} bytes ({:.1} bytes/vertex)",
        path.display(),
        bytes.len(),
        bytes.len() as f64 / n as f64
    );

    // --- Zero-copy load: validate once, then borrow -------------------------
    let loaded = std::fs::read(&path).expect("read snapshot");
    let t = std::time::Instant::now();
    let flat = FlatScheme::from_bytes(&loaded).expect("snapshot validates");
    println!(
        "loaded + validated in {:.1} µs (no per-label allocations afterwards)",
        t.elapsed().as_secs_f64() * 1e6
    );

    // --- Header stats vs the paper's Table 1 --------------------------------
    // Table 1: routing tables are O(n^{1/k} log² n) words, labels O(k log² n).
    let log2n = (n as f64).log2();
    let table_bound = (n as f64).powf(1.0 / k as f64) * log2n * log2n;
    let label_bound = k as f64 * log2n * log2n;
    println!(
        "\nheader accounting ({} clusters, {} members):",
        flat.num_clusters(),
        flat.total_members()
    );
    println!(
        "  max table  {:>6} words   vs Table-1 O(n^(1/k) log² n) ≈ {:>7.0}",
        flat.max_table_words(),
        table_bound
    );
    println!(
        "  avg table  {:>6.1} words",
        flat.total_table_words() as f64 / n as f64
    );
    println!(
        "  max label  {:>6} words   vs Table-1 O(k log² n)       ≈ {:>7.0}",
        flat.max_label_words(),
        label_bound
    );
    println!(
        "  avg label  {:>6.1} words",
        flat.total_label_words() as f64 / n as f64
    );

    // --- Serve queries directly off the flat columns ------------------------
    let engine = QueryEngine::new(flat, &g).expect("graph matches snapshot");
    println!("\nrouting a few pairs off the snapshot:");
    for (u, v) in [(0, n - 1), (n / 7, n / 2), (n / 3, n - 2)] {
        let out = engine.route(u, v).expect("delivery succeeds");
        let reference = built.scheme.route(&g, u, v).expect("delivery succeeds");
        assert_eq!(out.path, reference.path, "flat and in-memory must agree");
        println!(
            "  {u:>4} -> {v:>4}: {} hops through tree {} (level {}), stretch {:.3}",
            out.path.hops(),
            out.tree_root,
            out.level,
            out.stretch
        );
    }

    // --- And a sharded batch -------------------------------------------------
    let pairs = generate_pairs(&g, &PairWorkload::ZipfHotspot { exponent: 1.1 }, 5000, 7);
    let t = std::time::Instant::now();
    let batch = engine.route_batch(&pairs, None, 4);
    let secs = t.elapsed().as_secs_f64();
    println!(
        "\nbatch of {} Zipf-hotspot queries on 4 threads: {:.1} ms ({:.0} routes/s), \
         {} delivered, mean {:.1} hops",
        pairs.len(),
        secs * 1e3,
        pairs.len() as f64 / secs,
        batch.stats.delivered,
        batch.stats.total_hops as f64 / batch.stats.delivered.max(1) as f64
    );
}
