//! Vendored, API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the slice of proptest its tests actually use: the [`proptest!`] macro with
//! an optional `#![proptest_config(...)]` header, [`Strategy`] implemented
//! for integer ranges / tuples / [`collection::vec`], `prop_map`, and the
//! `prop_assert!` family. Inputs are generated from a deterministic RNG
//! seeded from the test's module path and name, so failures are reproducible
//! run-to-run. Shrinking is not implemented: a failing case panics with the
//! case index so it can be replayed by re-running the test.
//!
//! Swap this for the real crate by editing `[workspace.dependencies]` in the
//! root `Cargo.toml`; the test syntax is compatible, but generated inputs
//! will differ (different RNG and generation scheme).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy is
    /// just a deterministic function of the RNG stream.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (proptest's `prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// A strategy that always yields clones of one value (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "vec strategy needs a non-empty size range"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The per-test configuration and RNG.

    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SampleRange, SeedableRng};

    /// Configuration accepted by `#![proptest_config(...)]`.
    ///
    /// Only `cases` is honoured; the remaining fields exist so struct-update
    /// syntax against `ProptestConfig::default()` compiles.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; rejection sampling is not implemented.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                max_global_rejects: 1024,
            }
        }
    }

    /// Deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// An RNG whose stream depends only on (`test_path`, `case`), so every
        /// run regenerates the same inputs.
        pub fn deterministic(test_path: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Samples uniformly from `range`.
        pub fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
            self.inner.gen_range(range)
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Declares property tests.
///
/// Supports the subset of real-proptest syntax the workspace uses: an
/// optional `#![proptest_config(expr)]` header followed by test functions of
/// the form `#[test] fn name(pattern in strategy, ...) { body }`, each of
/// which may carry doc comments and extra attributes.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($config); $($rest)*);
    };
    (@munch ($config:expr); ) => {};
    (@munch ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases as u64 {
                let mut runner_rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut runner_rng);)+
                let _ = case;
                $body
            }
        }
        $crate::proptest!(@munch ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_maps_compose(pair in (0usize..10, 0usize..10), e in arb_even()) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0usize..20, 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 20));
        }
    }

    #[test]
    fn cases_are_reproducible() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = (0u64..1_000_000, 0u64..1_000_000);
        let a: Vec<_> = (0..10)
            .map(|c| s.generate(&mut TestRng::deterministic("x", c)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|c| s.generate(&mut TestRng::deterministic("x", c)))
            .collect();
        assert_eq!(a, b);
    }
}
