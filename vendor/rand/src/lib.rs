//! Vendored, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 series).
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the small slice of `rand` it actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait
//! (`gen_range`, `gen_bool`, `gen`), and [`seq::SliceRandom`]
//! (`choose`, `shuffle`). The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, which is all the workspace
//! relies on (every caller seeds explicitly for reproducibility).
//!
//! Swap this for the real crate by editing `[workspace.dependencies]` in the
//! root `Cargo.toml`. No source changes are required to compile, but note the
//! RNG *stream* differs from real rand's ChaCha12-based `StdRng`, so
//! seed-sensitive test assertions may need re-tuning after a swap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator: the core 64-bit output primitive.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the "standard" distribution:
/// `f64` in `[0, 1)`, full-range integers, and fair `bool`s.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                lo + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + f64::standard_sample(rng) * (self.end - self.start);
        // Floating-point rounding can land exactly on the excluded upper
        // bound; clamp to keep the half-open contract.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

/// Uniform value in `[0, span)` via Lemire's widening-multiply method
/// (debiased by rejection).
pub(crate) fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let hi = ((v as u128 * span as u128) >> 64) as u64;
        let lo = v.wrapping_mul(span);
        if lo <= zone {
            return hi;
        }
    }
}

/// Extension trait with the convenient sampling methods (`rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::standard_sample(self) < p
    }

    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ whose
    /// state is expanded from a `u64` seed with SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Extension methods on slices (`rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Returns a uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(super::uniform_u64(rng, self.len() as u64) as usize)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, super::uniform_u64(rng, i as u64 + 1) as usize);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose_cover_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }
}
