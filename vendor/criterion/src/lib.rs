//! Vendored, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the slice of criterion its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of criterion's
//! statistical machinery it runs a fixed warm-up plus `sample_size` timed
//! samples per benchmark and prints min / mean / max per-iteration times —
//! enough for the coarse comparisons the harness binaries make, while keeping
//! every bench target compiling against the real criterion API.
//!
//! Swap this for the real crate by editing `[workspace.dependencies]` in the
//! root `Cargo.toml`; the bench sources compile unchanged against either.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark: `function_name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<F: fmt::Display, P: fmt::Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Anything usable as a benchmark name: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Converts into a display string.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running one warm-up batch plus `sample_size` measured
    /// samples. The routine's output is passed through [`black_box`] so the
    /// optimiser cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.measured.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.measured.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for compatibility; the stub has no statistical model.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            measured: Vec::new(),
        };
        f(&mut b);
        self.criterion
            .report(&self.name, &id.into_name(), &b.measured);
        self
    }

    /// Runs a benchmark that receives `input` by reference.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            measured: Vec::new(),
        };
        f(&mut b, input);
        self.criterion
            .report(&self.name, &id.into_name(), &b.measured);
        self
    }

    /// Finishes the group (stub: nothing to flush; prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: Option<usize>,
}

impl Criterion {
    /// Sets the default number of samples for subsequent groups.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.default_sample_size = Some(n);
        self
    }

    /// Accepted for compatibility with criterion's CLI integration.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group<N: fmt::Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size.unwrap_or(50);
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.default_sample_size.unwrap_or(50),
            measured: Vec::new(),
        };
        f(&mut b);
        self.report("", name, &b.measured);
        self
    }

    fn report(&mut self, group: &str, name: &str, samples: &[Duration]) {
        let full = if group.is_empty() {
            name.to_string()
        } else {
            format!("{group}/{name}")
        };
        if samples.is_empty() {
            println!("{full:<48} (no samples recorded)");
            return;
        }
        let min = samples.iter().min().expect("non-empty");
        let max = samples.iter().max().expect("non-empty");
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{full:<48} time: [{} {} {}]",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` that runs each group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_record() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("inc", |b| b.iter(|| runs += 1));
        // one warm-up + 3 samples
        assert_eq!(runs, 4);
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
