//! Property-based integration tests (proptest): randomized graphs and
//! parameters, checking the invariants the paper's correctness rests on.

use proptest::prelude::*;

use en_graph::dijkstra::{all_pairs_dijkstra, dijkstra};
use en_graph::generators::{erdos_renyi_connected, random_tree, GeneratorConfig};
use en_graph::tree::RootedTree;
use en_graph::{bellman_ford::hop_bounded_distances, bfs::is_connected};
use en_hopset::verify::verify_hopset;
use en_hopset::{build_hopset, HopsetConfig};
use en_routing::construction::{build_routing_scheme, ConstructionConfig};
use en_routing::exact::exact_cluster_family;
use en_routing::hierarchy::Hierarchy;
use en_routing::params::SchemeParams;
use en_tree_routing::{TreeRoutingConfig, TreeRoutingScheme};

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Generated workloads are connected, and hop-bounded distances converge
    /// to the Dijkstra distances once the hop budget is large enough.
    #[test]
    fn hop_bounded_distances_converge_to_dijkstra(
        n in 10usize..50,
        seed in 0u64..1000,
        max_w in 1u64..200,
    ) {
        let g = erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, max_w), 0.15);
        prop_assert!(is_connected(&g));
        let sp = dijkstra(&g, 0);
        let hb = hop_bounded_distances(&g, 0, n);
        prop_assert_eq!(sp.dist, hb.dist);
    }

    /// Hop-bounded distances are monotone non-increasing in the hop budget.
    #[test]
    fn hop_bounded_distances_monotone_in_budget(
        n in 8usize..40,
        seed in 0u64..1000,
        t in 1usize..6,
    ) {
        let g = erdos_renyi_connected(&GeneratorConfig::new(n, seed), 0.2);
        let short = hop_bounded_distances(&g, 0, t);
        let long = hop_bounded_distances(&g, 0, t + 2);
        for v in g.nodes() {
            prop_assert!(long.dist[v] <= short.dist[v]);
        }
    }

    /// Tree routing is exact (stretch 1) for random trees, random portal
    /// budgets, and random endpoint pairs.
    #[test]
    fn tree_routing_is_exact(
        n in 5usize..80,
        seed in 0u64..1000,
        gamma in 0usize..20,
        pair in (0usize..80, 0usize..80),
    ) {
        let g = random_tree(&GeneratorConfig::new(n, seed).with_weights(1, 50));
        let tree = RootedTree::from_shortest_paths(&g, &dijkstra(&g, 0));
        let scheme = TreeRoutingScheme::build(&tree, &TreeRoutingConfig::new(seed).with_gamma(gamma));
        let (u, v) = (pair.0 % n, pair.1 % n);
        let route = scheme.route(u, v).unwrap();
        let expected = tree.tree_path(u, v).unwrap();
        prop_assert_eq!(route, expected);
    }

    /// The sampled-shortcut hopset never violates Definition 1 (lower side) and
    /// achieves ratio 1 (it is exact by construction).
    #[test]
    fn hopsets_satisfy_definition_1(
        n in 8usize..40,
        seed in 0u64..1000,
        rho_scaled in 1u32..5,
    ) {
        let rho = rho_scaled as f64 / 10.0;
        let g = erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, 50), 0.2);
        let h = build_hopset(&g, &HopsetConfig::new(rho, 0.1, seed));
        let report = verify_hopset(&g, &h);
        prop_assert_eq!(report.lower_violations, 0);
        prop_assert!(report.max_ratio <= 1.0 + 1e-9);
    }

    /// Exact clusters satisfy definition (6), and every vertex lies in exactly
    /// one cluster per level that contains it as the centre's "own" vertex.
    #[test]
    fn exact_cluster_membership_matches_definition(
        n in 10usize..45,
        seed in 0u64..500,
        k in 1usize..4,
    ) {
        let g = erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, 30), 0.2);
        let params = SchemeParams::new(k, n, seed);
        let hierarchy = Hierarchy::sample(&params);
        let family = exact_cluster_family(&g, &hierarchy);
        let truth = all_pairs_dijkstra(&g);
        for cluster in family.clusters() {
            let i = cluster.level();
            for v in g.nodes() {
                let threshold = if i + 1 < k {
                    family.pivots[v][i + 1].map_or(u64::MAX / 4, |(_, d)| d)
                } else {
                    u64::MAX / 4
                };
                let should = truth[cluster.center()][v] < threshold || v == cluster.center();
                prop_assert_eq!(cluster.contains(v), should);
            }
        }
    }

    /// End-to-end: the full construction routes every sampled pair with stretch
    /// within the bound, for random n, k and seeds.
    #[test]
    fn full_construction_routes_within_bound(
        n in 20usize..60,
        seed in 0u64..300,
        k in 1usize..5,
        pair in (0usize..60, 0usize..60),
    ) {
        let g = erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, 40), 0.15);
        let built = build_routing_scheme(&g, &ConstructionConfig::new(k, seed)).unwrap();
        let (u, v) = (pair.0 % n, pair.1 % n);
        if u != v {
            let out = built.scheme.route(&g, u, v).unwrap();
            prop_assert!(out.stretch <= built.params.stretch_bound() + 1e-9);
            prop_assert_eq!(out.path.nodes().last(), Some(&v));
        }
        let est = built.sketches.query(u, v).unwrap();
        let exact = dijkstra(&g, u).dist[v];
        prop_assert!(est.estimate >= exact);
        prop_assert!(est.estimate as f64 <= built.params.sketch_stretch_bound() * exact as f64 + 1e-9);
    }
}
