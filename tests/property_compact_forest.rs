//! Property-based equivalence suite for the arena-backed compact cluster
//! forest: the forest-backed family must be indistinguishable from the old
//! dense one-host-sized-tree-per-centre representation.
//!
//! Three layers of equivalence, across random graphs, `k ∈ {2, 3}`, and both
//! the exact and the approximate (end-to-end distributed) constructions:
//!
//! * **Representation**: every forest cluster materialises
//!   ([`ClusterView::tree`]) to a [`RootedTree`] with identical member sets,
//!   identical parent arcs, and root distances consistent with the recorded
//!   estimates; for the exact family, members and root estimates also match
//!   the retained per-centre restricted-Dijkstra oracle.
//! * **Tree routing**: building the Theorem-7 scheme from the zero-copy
//!   forest slice and from the materialised dense tree yields bit-identical
//!   tables and labels for every member.
//! * **Routing outcomes**: `RoutingScheme::assemble` (membership-CSR sweep
//!   over forest slices) and `RoutingScheme::assemble_reference` (the
//!   retained pre-forest assembly over materialised trees) produce
//!   bit-identical [`RouteOutcome`]s — same tree, same path, same lengths,
//!   same stretch bits — for sampled vertex pairs, and identical table and
//!   label sizes everywhere.

use proptest::prelude::*;

use en_graph::forest::TreeView;
use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
use en_graph::WeightedGraph;
use en_routing::construction::{build_routing_scheme, ConstructionConfig};
use en_routing::exact::{exact_cluster_family, grow_exact_cluster_csr, membership_thresholds};
use en_routing::scheme::RoutingScheme;
use en_routing::{ClusterFamily, Hierarchy, SchemeParams};
use en_tree_routing::{TreeRoutingConfig, TreeRoutingScheme};

fn arb_graph() -> impl Strategy<Value = (WeightedGraph, u64)> {
    (16usize..56, 0u64..10_000, 1u64..60).prop_map(|(n, seed, max_w)| {
        (
            erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, max_w), 0.12),
            seed,
        )
    })
}

/// Representation equivalence: each forest slice and its materialised dense
/// tree describe the same rooted tree, and the root estimates are coherent.
fn check_forest_matches_dense(g: &WeightedGraph, family: &ClusterFamily) {
    for view in family.clusters() {
        let tree = view.tree();
        assert_eq!(tree.root(), view.center());
        assert_eq!(tree.len(), view.len());
        assert_eq!(tree.members(), view.members().collect::<Vec<_>>());
        for v in view.members() {
            assert_eq!(
                tree.parent(v),
                view.parent(v),
                "centre {}: parent arc of {v} differs",
                view.center()
            );
        }
        assert!(tree.is_subgraph_of(g), "centre {}", view.center());
        // The local topology of the slice and of the dense tree agree.
        let a = view.topology();
        let b = tree.topology();
        assert_eq!(a.members, b.members);
        assert_eq!(a.parent_idx, b.parent_idx);
        assert_eq!(a.parent_weight, b.parent_weight);
        assert_eq!(a.root_pos, b.root_pos);
    }
}

/// Tree-routing equivalence: the Theorem-7 scheme built from the zero-copy
/// slice equals the one built from the materialised dense tree, table for
/// table and label for label.
fn check_tree_schemes_match(family: &ClusterFamily, tree_seed: u64) {
    for view in family.clusters() {
        let config =
            TreeRoutingConfig::new(tree_seed ^ (view.center() as u64).wrapping_mul(0x9E37_79B9));
        let from_slice = TreeRoutingScheme::build(&view, &config);
        let from_dense = TreeRoutingScheme::build(&view.tree(), &config);
        assert_eq!(from_slice.portals(), from_dense.portals());
        for v in view.members() {
            assert_eq!(
                from_slice.table(v),
                from_dense.table(v),
                "centre {}: table of {v} differs",
                view.center()
            );
            assert_eq!(
                from_slice.label(v),
                from_dense.label(v),
                "centre {}: label of {v} differs",
                view.center()
            );
        }
    }
}

/// Routing-outcome equivalence: the membership-CSR assembly and the retained
/// pre-forest reference assembly are bit-identical in everything a user can
/// observe.
fn check_assemblies_match(g: &WeightedGraph, family: &ClusterFamily, tree_seed: u64) {
    let fast = RoutingScheme::assemble(family, tree_seed);
    let reference = RoutingScheme::assemble_reference(family, tree_seed);
    let n = g.num_nodes();
    for v in 0..n {
        assert_eq!(fast.trees_containing(v), reference.trees_containing(v));
        assert_eq!(fast.table_words(v), reference.table_words(v));
        assert_eq!(fast.label_words(v), reference.label_words(v));
    }
    for u in (0..n).step_by(3) {
        for v in (0..n).step_by(5) {
            if u == v {
                continue;
            }
            let a = fast.route(g, u, v).expect("fast route succeeds");
            let b = reference.route(g, u, v).expect("reference route succeeds");
            assert_eq!(a.tree_root, b.tree_root, "{u}->{v}: tree choice differs");
            assert_eq!(a.level, b.level, "{u}->{v}");
            assert_eq!(a.path, b.path, "{u}->{v}: paths differ");
            assert_eq!(a.length, b.length, "{u}->{v}");
            assert_eq!(a.exact, b.exact, "{u}->{v}");
            assert_eq!(
                a.stretch.to_bits(),
                b.stretch.to_bits(),
                "{u}->{v}: stretch bits differ"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    /// The exact construction: forest ≡ dense representation ≡ per-centre
    /// oracle, and routing outcomes are bit-identical.
    #[test]
    fn exact_family_forest_is_equivalent_to_dense(
        gs in arb_graph(),
        k in 2usize..4,
    ) {
        let (g, seed) = gs;
        let n = g.num_nodes();
        let params = SchemeParams::new(k, n, seed);
        let hierarchy = Hierarchy::sample(&params);
        let family = exact_cluster_family(&g, &hierarchy);
        check_forest_matches_dense(&g, &family);
        // Members and root estimates also match the per-centre oracle (the
        // pre-forest ground truth).
        let csr = en_graph::CsrGraph::from_graph(&g);
        for view in family.clusters() {
            let threshold = membership_thresholds(&family.pivots, view.level());
            let oracle = grow_exact_cluster_csr(&csr, view.center(), view.level(), &threshold);
            prop_assert_eq!(view.members().collect::<Vec<_>>(), oracle.members());
            for (v, &est) in view.members().zip(view.root_dists()) {
                prop_assert_eq!(Some(&est), oracle.root_estimate.get(&v));
            }
        }
        check_tree_schemes_match(&family, seed);
        check_assemblies_match(&g, &family, seed);
    }

    /// The approximate (end-to-end distributed) construction: the family the
    /// pipeline produces is representation- and routing-equivalent too.
    #[test]
    fn approx_family_forest_is_equivalent_to_dense(
        gs in arb_graph(),
        k in 2usize..4,
    ) {
        let (g, seed) = gs;
        let built = build_routing_scheme(&g, &ConstructionConfig::new(k, seed)).unwrap();
        check_forest_matches_dense(&g, &built.family);
        check_tree_schemes_match(&built.family, seed);
        check_assemblies_match(&g, &built.family, seed);
    }
}
