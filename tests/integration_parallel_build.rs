//! Bit-identical determinism of the parallel construction pipeline: the same
//! graph built with 1, 2, and 8 worker threads yields byte-identical wire
//! snapshots, identical cluster forests, pivots, and route outcomes (down to
//! the stretch bits), while the per-thread work accounting always sums to
//! the sequential totals. Degenerate shardings — more threads than work
//! items, single-vertex hosts, disconnected kernel inputs — are exercised
//! explicitly.

use en_graph::generators::{erdos_renyi_connected, random_geometric_connected, GeneratorConfig};
use en_graph::{restricted_multi_source_csr_opts, BuildOptions, CsrGraph, NodeId, INFINITY};
use en_routing::construction::{
    build_routing_scheme, build_routing_scheme_with, BuiltScheme, ConstructionConfig,
};
use en_wire::serialize;

fn build(g: &en_graph::WeightedGraph, k: usize, seed: u64, threads: usize) -> BuiltScheme {
    build_routing_scheme_with(
        g,
        &ConstructionConfig::new(k, seed),
        &BuildOptions::new(threads),
    )
    .expect("construction succeeds")
}

/// Asserts every observable artefact of `b` equals the sequential oracle
/// `a`: wire bytes, forest, pivots, and per-pair route outcomes.
fn assert_builds_identical(g: &en_graph::WeightedGraph, a: &BuiltScheme, b: &BuiltScheme) {
    assert_eq!(
        serialize(&a.scheme),
        serialize(&b.scheme),
        "wire snapshots must be byte-identical"
    );
    assert_eq!(a.family.forest, b.family.forest, "cluster forests differ");
    assert_eq!(a.family.pivots, b.family.pivots, "pivot tables differ");
    assert_eq!(
        a.ledger.total_rounds(),
        b.ledger.total_rounds(),
        "round charges differ"
    );
    let n = g.num_nodes();
    for u in (0..n).step_by(7) {
        for v in (0..n).step_by(11) {
            if u == v {
                continue;
            }
            let x = a.scheme.route(g, u, v).expect("oracle route delivers");
            let y = b.scheme.route(g, u, v).expect("parallel route delivers");
            assert_eq!(x.tree_root, y.tree_root, "{u}->{v}");
            assert_eq!(x.level, y.level, "{u}->{v}");
            assert_eq!(x.path, y.path, "{u}->{v}");
            assert_eq!(x.length, y.length, "{u}->{v}");
            assert_eq!(x.exact, y.exact, "{u}->{v}");
            assert_eq!(x.stretch.to_bits(), y.stretch.to_bits(), "{u}->{v}");
        }
    }
}

#[test]
fn full_build_is_bit_identical_across_thread_counts() {
    for (k, seed) in [(2usize, 21u64), (3, 22), (4, 23)] {
        let g = erdos_renyi_connected(&GeneratorConfig::new(140, seed).with_weights(1, 50), 0.06);
        let sequential = build(&g, k, seed, 1);
        assert!(sequential.build_stats.total_sources() > 0);
        assert!(sequential.build_stats.total_members() > 0);
        for threads in [2usize, 8] {
            let parallel = build(&g, k, seed, threads);
            assert_builds_identical(&g, &sequential, &parallel);
            // The work accounting is the one artefact allowed to differ in
            // shape — but never in total.
            assert_eq!(
                sequential.build_stats.total_sources(),
                parallel.build_stats.total_sources(),
                "k={k} threads={threads}"
            );
            assert_eq!(
                sequential.build_stats.total_members(),
                parallel.build_stats.total_members(),
                "k={k} threads={threads}"
            );
            assert!(
                parallel.build_stats.threads_used() > 1,
                "k={k} threads={threads}: expected sharded work, got {:?}",
                parallel.build_stats
            );
        }
    }
}

#[test]
fn default_build_matches_the_sequential_oracle() {
    // `build_routing_scheme` defaults to the host's available parallelism;
    // whatever that is, the output must be the sequential one.
    let g = random_geometric_connected(&GeneratorConfig::new(90, 31).with_weights(1, 9), 0.18);
    let defaulted = build_routing_scheme(&g, &ConstructionConfig::new(3, 31)).unwrap();
    let sequential = build(&g, 3, 31, 1);
    assert_builds_identical(&g, &sequential, &defaulted);
    assert_eq!(
        sequential.build_stats.total_members(),
        defaulted.build_stats.total_members()
    );
}

#[test]
fn more_threads_than_work_items_degenerates_gracefully() {
    // 10 vertices, 64 requested workers: every phase has (far) fewer work
    // items than threads, so most worker slots get empty shards.
    let g = erdos_renyi_connected(&GeneratorConfig::new(10, 41).with_weights(1, 5), 0.4);
    let sequential = build(&g, 2, 41, 1);
    let oversubscribed = build(&g, 2, 41, 64);
    assert_builds_identical(&g, &sequential, &oversubscribed);
    assert_eq!(
        sequential.build_stats.total_sources(),
        oversubscribed.build_stats.total_sources()
    );
}

#[test]
fn single_vertex_host_builds_at_any_thread_count() {
    let g = en_graph::WeightedGraph::new(1);
    for threads in [1usize, 2, 8] {
        let built = build(&g, 1, 7, threads);
        assert_eq!(built.scheme.n(), 1);
        let bytes = serialize(&built.scheme);
        assert_eq!(bytes, serialize(&build(&g, 1, 7, 1).scheme), "{threads}");
    }
}

#[test]
fn spanning_single_cluster_family_is_thread_invariant() {
    // k = 1: every vertex is a level-0 centre and one cluster (its own)
    // spans all of its strict-inequality ball — including the whole-host
    // cluster of the minimum-eccentricity centre on a star graph.
    let star = en_graph::WeightedGraph::from_edges(
        6,
        [(0, 1, 1), (0, 2, 1), (0, 3, 1), (0, 4, 1), (0, 5, 1)],
    )
    .unwrap();
    let sequential = build(&star, 1, 5, 1);
    let spans_all = sequential
        .family
        .forest
        .clusters()
        .any(|c| c.len() == star.num_nodes());
    assert!(spans_all, "star centre's cluster must span the host");
    for threads in [2usize, 8, 16] {
        let parallel = build(&star, 1, 5, threads);
        assert_builds_identical(&star, &sequential, &parallel);
    }
}

#[test]
fn restricted_kernel_is_thread_invariant_on_disconnected_hosts() {
    // The full construction rejects disconnected graphs, but the kernel
    // must still shard them deterministically (unreachable components stay
    // unreachable in every shard).
    let g = en_graph::WeightedGraph::from_edges(
        8,
        [
            (0, 1, 2),
            (1, 2, 3),
            (2, 3, 1),
            // 4..8 is a separate component.
            (4, 5, 1),
            (5, 6, 2),
            (6, 7, 1),
        ],
    )
    .unwrap();
    let csr = CsrGraph::from_graph(&g);
    let sources: Vec<NodeId> = (0..8).collect();
    let threshold = vec![INFINITY; 8];
    let (oracle, seq_stats) =
        restricted_multi_source_csr_opts(&csr, &sources, &threshold, None, &BuildOptions::new(1));
    for threads in [2usize, 8, 32] {
        let (sharded, stats) = restricted_multi_source_csr_opts(
            &csr,
            &sources,
            &threshold,
            None,
            &BuildOptions::new(threads),
        );
        assert_eq!(oracle, sharded, "{threads} threads");
        assert_eq!(seq_stats.total_sources(), stats.total_sources());
        assert_eq!(seq_stats.total_members(), stats.total_members());
    }
}
