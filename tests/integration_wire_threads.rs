//! Multi-thread determinism of the `en_wire` query engine: the same batch
//! sharded across 1, 2, and 8 scoped worker threads yields identical
//! per-pair outcomes *and* identical aggregate stretch statistics (the
//! stats are folded in input order, so even the floating-point sums cannot
//! depend on the sharding).

use en_graph::dijkstra::dijkstra;
use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
use en_graph::Dist;
use en_routing::construction::{build_routing_scheme, ConstructionConfig};
use en_wire::{generate_pairs, serialize, FlatScheme, PairWorkload, QueryEngine};

#[test]
fn batch_outcomes_are_identical_across_thread_counts() {
    let g = erdos_renyi_connected(&GeneratorConfig::new(200, 17).with_weights(1, 40), 0.05);
    let built = build_routing_scheme(&g, &ConstructionConfig::new(3, 17)).unwrap();
    let bytes = serialize(&built.scheme);
    let flat = FlatScheme::from_bytes(&bytes).expect("snapshot validates");
    let engine = QueryEngine::new(flat, &g).expect("sizes match");

    // A mixed workload with precomputed exact distances, so the aggregate
    // stretch statistics are meaningful.
    let pairs = generate_pairs(
        &g,
        &PairWorkload::NearFar {
            near_fraction: 0.4,
            walk_hops: 2,
        },
        600,
        99,
    );
    let exacts: Vec<Dist> = {
        // One Dijkstra per distinct source, reused across its pairs.
        let mut cache: std::collections::HashMap<usize, Vec<Dist>> = Default::default();
        pairs
            .iter()
            .map(|&(u, v)| {
                cache
                    .entry(u)
                    .or_insert_with(|| dijkstra(&g, u).dist.clone())[v]
            })
            .collect()
    };

    // Per-shard accounting: at every thread count the shard totals must
    // reconstruct the batch exactly, and the fault counters stay zero on a
    // healthy snapshot.
    let check_shards = |batch: &en_wire::BatchOutcome, threads: usize| {
        let queries: usize = batch.shards.iter().map(|s| s.queries).sum();
        let errors: usize = batch.shards.iter().map(|s| s.errors).sum();
        let retries: usize = batch.shards.iter().map(|s| s.retries).sum();
        assert_eq!(queries, batch.stats.pairs, "{threads} threads");
        assert_eq!(errors, batch.stats.failed, "{threads} threads");
        assert_eq!(retries, batch.stats.retried, "{threads} threads");
        assert!(
            batch.shards.iter().all(|s| !s.panicked),
            "healthy snapshot panicked a shard at {threads} threads"
        );
        assert_eq!(batch.stats.shard_panics, 0, "{threads} threads");
        assert_eq!(batch.stats.retried, 0, "{threads} threads");
        assert_eq!(batch.stats.degraded, 0, "{threads} threads");
    };

    let single = engine.route_batch(&pairs, Some(&exacts), 1);
    assert_eq!(single.stats.pairs, pairs.len());
    assert_eq!(single.stats.failed, 0, "all pairs must deliver");
    assert!(single.stats.max_stretch >= 1.0);
    assert!(single.stats.total_hops > 0);
    assert_eq!(single.shards.len(), 1, "one shard on one thread");
    check_shards(&single, 1);

    for threads in [2usize, 8] {
        let sharded = engine.route_batch(&pairs, Some(&exacts), threads);
        assert_eq!(sharded.shards.len(), threads, "{threads} threads");
        check_shards(&sharded, threads);
        assert_eq!(
            sharded.outcomes.len(),
            single.outcomes.len(),
            "{threads} threads"
        );
        for (i, (a, b)) in single.outcomes.iter().zip(&sharded.outcomes).enumerate() {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.tree_root, b.tree_root, "pair {i}, {threads} threads");
            assert_eq!(a.level, b.level, "pair {i}");
            assert_eq!(a.path, b.path, "pair {i}, {threads} threads");
            assert_eq!(a.length, b.length, "pair {i}");
            assert_eq!(a.exact, b.exact, "pair {i}");
            assert_eq!(
                a.stretch.to_bits(),
                b.stretch.to_bits(),
                "pair {i}, {threads} threads"
            );
        }
        // Aggregates are computed in input order: bit-identical too.
        assert_eq!(single.stats.delivered, sharded.stats.delivered);
        assert_eq!(single.stats.failed, sharded.stats.failed);
        assert_eq!(single.stats.total_hops, sharded.stats.total_hops);
        assert_eq!(single.stats.total_length, sharded.stats.total_length);
        assert_eq!(
            single.stats.max_stretch.to_bits(),
            sharded.stats.max_stretch.to_bits(),
            "{threads} threads"
        );
        assert_eq!(
            single.stats.mean_stretch.to_bits(),
            sharded.stats.mean_stretch.to_bits(),
            "{threads} threads"
        );
    }

    // Degenerate shardings behave too: more threads than pairs, zero
    // threads, and remainders where ceil-sized chunks don't fill the last
    // shard (5 pairs over 4 threads leaves shard 3 empty).
    let tiny = &pairs[..3];
    let a = engine.route_batch(tiny, Some(&exacts[..3]), 16);
    let b = engine.route_batch(tiny, Some(&exacts[..3]), 0);
    // Cache hit/miss tallies are per-shard (each worker owns its cache), so
    // they legitimately vary with the sharding; everything else is exact.
    assert_eq!(
        a.stats.without_cache_counters(),
        b.stats.without_cache_counters()
    );
    for (len, threads) in [(5usize, 4usize), (7, 5), (9, 7), (11, 8)] {
        let uneven = engine.route_batch(&pairs[..len], Some(&exacts[..len]), threads);
        assert_eq!(
            uneven.stats.pairs, len,
            "{len} pairs over {threads} threads"
        );
        assert_eq!(
            uneven.stats.without_cache_counters(),
            engine
                .route_batch(&pairs[..len], Some(&exacts[..len]), 1)
                .stats
                .without_cache_counters()
        );
        // Shard accounting also reconstructs uneven batches exactly.
        assert_eq!(
            uneven.shards.iter().map(|s| s.queries).sum::<usize>(),
            len,
            "{len} pairs over {threads} threads"
        );
    }
    let empty = engine.route_batch(&[], None, 4);
    assert_eq!(empty.stats.pairs, 0);
    assert_eq!(empty.stats.delivered, 0);
    assert_eq!(empty.shards.iter().map(|s| s.queries).sum::<usize>(), 0);

    // Out-of-range vertex ids on the flat read surface degrade gracefully
    // (the engine's own route path reports NodeOutOfRange for them).
    let flat = engine.flat();
    assert_eq!(flat.trees_of(flat.n()).len(), 0);
    assert!(flat.trees_of(flat.n() + 100).is_empty());
    assert!(flat.own_label(flat.n(), 0).is_none());
    assert_eq!(flat.own_label_count(flat.n() + 1), 0);
    assert_eq!(flat.label_entries_of(flat.n()).count(), 0);
    assert!(flat.cluster_of_center(flat.n() + 5).is_none());
}

#[test]
fn batch_without_exacts_reports_placeholder_stretch() {
    let g = erdos_renyi_connected(&GeneratorConfig::new(80, 3).with_weights(1, 20), 0.1);
    let built = build_routing_scheme(&g, &ConstructionConfig::new(2, 3)).unwrap();
    let bytes = serialize(&built.scheme);
    let flat = FlatScheme::from_bytes(&bytes).unwrap();
    let engine = QueryEngine::new(flat, &g).unwrap();
    let pairs = generate_pairs(&g, &PairWorkload::Uniform, 100, 1);
    let batch = engine.route_batch(&pairs, None, 2);
    assert_eq!(batch.stats.failed, 0);
    for out in &batch.outcomes {
        let out = out.as_ref().unwrap();
        assert_eq!(out.exact, 0, "no exacts supplied");
        assert_eq!(out.stretch, 1.0, "placeholder stretch");
    }
}
