//! Observability reconciliation: the `en_obs` metrics published by the
//! instrumented layers must agree *exactly* with the accounting structs
//! the layers already return (`BuildStats`, `BatchStats`, `ValidateStats`)
//! at every thread count, and instrumentation must never perturb outcomes.
//!
//! The recorder seam is process-global, so every test that installs a
//! registry serializes on [`OBS_LOCK`].

use std::sync::{Arc, Mutex, MutexGuard};

use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
use en_graph::{BuildOptions, WeightedGraph};
use en_obs::MetricsRegistry;
use en_routing::construction::{build_routing_scheme_with, BuiltScheme, ConstructionConfig};
use en_wire::checksum::fnv1a_words;
use en_wire::{generate_pairs, BatchOutcome, FlatScheme, PairWorkload, QueryEngine};

/// Serializes tests that install the process-global recorder.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_lock() -> MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn workload() -> WeightedGraph {
    erdos_renyi_connected(
        &GeneratorConfig::new(96, 17).with_weights(1, 50),
        8.0 / 96.0,
    )
}

fn build_with(g: &WeightedGraph, threads: usize) -> BuiltScheme {
    build_routing_scheme_with(
        g,
        &ConstructionConfig::new(2, 17),
        &BuildOptions::new(threads),
    )
    .expect("construction on a connected workload succeeds")
}

/// Folds a batch's observable outcome into one word for bit-identity checks.
fn digest(batch: &BatchOutcome) -> u64 {
    let mut words: Vec<u64> = Vec::new();
    for out in &batch.outcomes {
        match out {
            Ok(o) => {
                words.push(1);
                words.push(o.tree_root as u64);
                words.push(o.level as u64);
                words.push(o.length);
                words.extend(o.path.nodes().iter().map(|&v| v as u64));
            }
            Err(_) => words.push(0),
        }
    }
    fnv1a_words(&words)
}

#[test]
fn build_counters_reconcile_with_build_stats_at_every_thread_count() {
    let _serial = obs_lock();
    let g = workload();
    let mut totals: Vec<(u64, u64)> = Vec::new();
    for threads in [1usize, 2, 8] {
        let registry = Arc::new(MetricsRegistry::new());
        let built = {
            let _guard = en_obs::install(registry.clone());
            build_with(&g, threads)
        };
        let sources = registry.counter_value("build.sources_total");
        let members = registry.counter_value("build.members_total");
        assert_eq!(
            sources,
            built.build_stats.total_sources() as u64,
            "build.sources_total vs BuildStats at {threads} threads"
        );
        assert_eq!(
            members,
            built.build_stats.total_members() as u64,
            "build.members_total vs BuildStats at {threads} threads"
        );
        assert_eq!(
            registry.gauge_value("build.threads_used"),
            built.build_stats.threads_used() as u64,
            "build.threads_used gauge at {threads} threads"
        );
        assert_eq!(
            registry.gauge_value("congest.rounds_charged"),
            built.ledger.total_rounds() as u64,
            "congest.rounds_charged vs RoundLedger at {threads} threads"
        );
        assert!(
            registry.gauge_value("congest.phases_charged") > 0,
            "ledger publishes a nonzero phase count"
        );
        totals.push((sources, members));
    }
    // The totals themselves are invariant across thread counts — the obs
    // counters must inherit that invariance, not just match per-run.
    assert_eq!(
        totals[0], totals[1],
        "obs totals drift between 1 and 2 threads"
    );
    assert_eq!(
        totals[0], totals[2],
        "obs totals drift between 1 and 8 threads"
    );
}

#[test]
fn batch_counters_reconcile_and_outcomes_stay_bit_identical() {
    let _serial = obs_lock();
    let g = workload();
    let built = build_with(&g, 1);
    let bytes = en_wire::serialize(&built.scheme);
    let flat = FlatScheme::from_bytes(&bytes).expect("snapshot validates");
    let engine = QueryEngine::new(flat, &g).expect("same graph");
    let pairs = generate_pairs(&g, &PairWorkload::Uniform, 300, 7);

    // Baseline digests with no recorder installed.
    let base: Vec<u64> = [1usize, 2, 8]
        .iter()
        .map(|&t| digest(&engine.route_batch(&pairs, None, t)))
        .collect();

    for (i, threads) in [1usize, 2, 8].into_iter().enumerate() {
        let registry = Arc::new(MetricsRegistry::new());
        let batch = {
            let _guard = en_obs::install(registry.clone());
            engine.route_batch(&pairs, None, threads)
        };
        assert_eq!(
            digest(&batch),
            base[i],
            "instrumentation changed outcomes at {threads} threads"
        );
        let s = &batch.stats;
        for (name, want) in [
            ("wire.batch.pairs", s.pairs as u64),
            ("wire.batch.delivered", s.delivered as u64),
            ("wire.batch.failed", s.failed as u64),
            ("wire.batch.hops_total", s.total_hops),
            ("wire.batch.length_total", s.total_length),
            ("wire.shard.panics", s.shard_panics as u64),
            ("wire.shard.retried", s.retried as u64),
            ("wire.shard.degraded", s.degraded as u64),
            ("wire.cache.hits", s.cache_hits),
            ("wire.cache.misses", s.cache_misses),
            ("wire.cache.evictions", s.cache_evictions),
        ] {
            assert_eq!(
                registry.counter_value(name),
                want,
                "{name} vs BatchStats at {threads} threads"
            );
        }
        // Every routed pair lands in the latency histogram; every delivery
        // lands in the hops histogram.
        assert_eq!(
            registry.histogram("wire.route_latency_ns").count(),
            s.pairs as u64,
            "latency histogram count at {threads} threads"
        );
        let hops = registry.histogram("wire.route_hops");
        assert_eq!(
            hops.count(),
            s.delivered as u64,
            "hops histogram count at {threads} threads"
        );
        assert_eq!(
            hops.sum(),
            s.total_hops,
            "hops histogram sum vs BatchStats.total_hops at {threads} threads"
        );
    }
}

#[test]
fn validate_counters_reconcile_with_validate_stats_at_every_thread_count() {
    let _serial = obs_lock();
    let g = workload();
    let built = build_with(&g, 1);
    let bytes = en_wire::serialize(&built.scheme);
    for threads in [1usize, 2, 8] {
        let registry = Arc::new(MetricsRegistry::new());
        let stats = {
            let _guard = en_obs::install(registry.clone());
            let (_, stats) =
                FlatScheme::from_bytes_accounted(&bytes, threads).expect("snapshot validates");
            stats
        };
        assert_eq!(registry.counter_value("wire.validate.runs"), 1);
        assert_eq!(
            registry.counter_value("wire.validate.words_total"),
            stats.total_words() as u64,
            "wire.validate.words_total vs ValidateStats at {threads} requested threads"
        );
        assert_eq!(
            registry.gauge_value("wire.validate.threads"),
            stats.threads as u64,
            "wire.validate.threads gauge at {threads} requested threads"
        );
        assert_eq!(registry.histogram("wire.validate_ns").count(), 1);
    }
}

#[test]
fn live_run_dump_passes_schema_validation_in_both_formats() {
    let _serial = obs_lock();
    let g = workload();
    let registry = Arc::new(MetricsRegistry::new());
    {
        let _guard = en_obs::install(registry.clone());
        let built = build_with(&g, 2);
        let bytes = en_wire::serialize(&built.scheme);
        let flat = FlatScheme::from_bytes(&bytes).expect("snapshot validates");
        let engine = QueryEngine::new(flat, &g).expect("same graph");
        let pairs = generate_pairs(&g, &PairWorkload::Uniform, 100, 3);
        engine.route_batch(&pairs, None, 2);
    }
    let jsonl = en_obs::to_jsonl(&registry);
    let summary = en_obs::validate_jsonl(&jsonl).expect("live dump conforms to en-obs/v1");
    assert!(summary.counters >= 5, "dump carries the wired counters");
    assert!(summary.histograms >= 2, "dump carries the wired histograms");
    assert!(summary.spans >= 1, "dump carries the construction spans");
    let prom = en_obs::to_prometheus(&registry);
    assert!(prom.contains("wire_batch_pairs"));
    assert!(prom.contains("_bucket{le=\"+Inf\"}"));
}
