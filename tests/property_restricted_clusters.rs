//! Property-based equivalence suite for the batched restricted multi-source
//! kernel (`en_graph::restricted`), mirroring the naive-vs-batched oracle
//! pattern of the Theorem-1 kernel tests: across random Erdős–Rényi graphs,
//! levels, and threshold vectors (both genuine Thorup–Zwick thresholds
//! `d_G(·, A_{i+1})` and adversarially random ones), the batched kernel must
//! agree with the retained per-centre restricted Dijkstra
//! (`grow_exact_cluster_csr`) — same member sets, same `root_estimate`
//! distances, and tree parents that form valid shortest-path trees inside
//! the member set.

use proptest::prelude::*;

use en_graph::dijkstra::multi_source_dijkstra;
use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
use en_graph::{restricted_multi_source_csr, CsrGraph, Dist, NodeId, WeightedGraph, INFINITY};
use en_routing::exact::{
    exact_cluster_family, grow_exact_cluster_csr, grow_exact_clusters_batched,
    membership_thresholds,
};
use en_routing::{Hierarchy, SchemeParams};

fn arb_connected_graph() -> impl Strategy<Value = WeightedGraph> {
    (8usize..60, 0u64..10_000, 1u64..100).prop_map(|(n, seed, max_w)| {
        erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, max_w), 0.12)
    })
}

/// Checks one batched forest cluster against the per-centre oracle (which
/// still materialises the dense per-centre representation), including tree
/// validity (real edges, root distances reproducing the recorded estimates).
fn assert_cluster_matches_oracle(
    g: &WeightedGraph,
    csr: &CsrGraph,
    cluster: en_graph::ClusterView<'_>,
    threshold: &[Dist],
) {
    let oracle = grow_exact_cluster_csr(csr, cluster.center(), cluster.level(), threshold);
    assert_eq!(
        cluster.members().collect::<Vec<_>>(),
        oracle.members(),
        "centre {}: member sets differ",
        cluster.center()
    );
    for (v, &est) in cluster.members().zip(cluster.root_dists()) {
        assert_eq!(
            Some(&est),
            oracle.root_estimate.get(&v),
            "centre {}: root estimates differ at {v}",
            cluster.center()
        );
    }
    let tree = cluster.tree();
    assert!(tree.is_subgraph_of(g), "tree uses non-graph edges");
    let tree_dist = tree.root_distances();
    for v in cluster.members() {
        assert_eq!(
            tree_dist[v],
            cluster.root_dist(v),
            "centre {}: tree path to {v} does not realise the estimate",
            cluster.center()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Genuine TZ thresholds: a random "next level" `A` induces
    /// `threshold[v] = d_G(v, A)`; every vertex outside `A` is a centre.
    #[test]
    fn batched_matches_oracle_on_tz_thresholds(
        g in arb_connected_graph(),
        level_mod in 2usize..8,
        level_shift in 0usize..8,
    ) {
        let n = g.num_nodes();
        let level: Vec<NodeId> = (0..n).filter(|v| v % level_mod == level_shift % level_mod).collect();
        let threshold = if level.is_empty() {
            vec![INFINITY; n]
        } else {
            multi_source_dijkstra(&g, &level).0
        };
        let centers: Vec<NodeId> = (0..n).filter(|v| !level.contains(v)).collect();
        let csr = CsrGraph::from_graph(&g);
        let forest = grow_exact_clusters_batched(&csr, &centers, 0, &threshold);
        prop_assert_eq!(forest.num_clusters(), centers.len());
        for cluster in forest.clusters() {
            assert_cluster_matches_oracle(&g, &csr, cluster, &threshold);
        }
    }

    /// Adversarially random threshold vectors (not realisable as distances to
    /// any level): the kernel contract must still match the oracle cell for
    /// cell — member sets and raw restricted distances.
    #[test]
    fn batched_matches_oracle_on_random_thresholds(
        g in arb_connected_graph(),
        thresholds_seed in proptest::collection::vec(0u64..200, 60..61),
        sources_mod in 3usize..9,
    ) {
        let n = g.num_nodes();
        let threshold: Vec<Dist> = (0..n)
            .map(|v| {
                // Mix of zeros, small finite values, and infinities.
                match thresholds_seed[v % thresholds_seed.len()] {
                    t if t < 10 => 0,
                    t if t >= 180 => INFINITY,
                    t => t,
                }
            })
            .collect();
        let sources: Vec<NodeId> = (0..n).filter(|v| v % sources_mod == 0).collect();
        let csr = CsrGraph::from_graph(&g);
        let res = restricted_multi_source_csr(&csr, &sources, &threshold, None);
        for (s, &src) in sources.iter().enumerate() {
            let oracle = grow_exact_cluster_csr(&csr, src, 0, &threshold);
            let members: Vec<NodeId> = res.members_of(s).collect();
            prop_assert_eq!(&members, &oracle.members(), "source {}", src);
            for &v in &members {
                prop_assert_eq!(res.dist_row(s)[v], oracle.root_estimate[&v], "source {} vertex {}", src, v);
                if v != src {
                    let (p, w) = res.parent_of(s, v).expect("member has parent");
                    prop_assert!(res.is_member(s, p));
                    prop_assert_eq!(g.edge_weight(v, p), Some(w));
                    prop_assert_eq!(res.dist_row(s)[p] + w, res.dist_row(s)[v]);
                }
            }
        }
    }

    /// The whole-family build (all levels of a sampled hierarchy) agrees with
    /// growing every cluster individually through the oracle.
    #[test]
    fn exact_family_matches_per_centre_oracle(
        g in arb_connected_graph(),
        k in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let n = g.num_nodes();
        let params = SchemeParams::new(k, n, seed);
        let hierarchy = Hierarchy::sample(&params);
        let family = exact_cluster_family(&g, &hierarchy);
        let csr = CsrGraph::from_graph(&g);
        for i in 0..hierarchy.k() {
            let threshold = membership_thresholds(&family.pivots, i);
            for center in hierarchy.centers_at(i) {
                assert_cluster_matches_oracle(&g, &csr, family.cluster(center).unwrap(), &threshold);
            }
        }
    }
}
