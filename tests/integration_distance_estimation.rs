//! Integration tests for the distance-estimation corollary (Section 5):
//! sketches built by the full distributed construction answer queries with
//! stretch `2k − 1 + o(1)` in `O(k)` time.

use en_graph::dijkstra::all_pairs_dijkstra;
use en_graph::generators::{erdos_renyi_connected, random_geometric_connected, GeneratorConfig};
use en_routing::construction::{build_routing_scheme, ConstructionConfig};

#[test]
fn sketch_stretch_within_2k_minus_1_all_pairs() {
    for (k, seed) in [(2usize, 1u64), (3, 2)] {
        let g = erdos_renyi_connected(&GeneratorConfig::new(60, seed).with_weights(1, 60), 0.1);
        let built = build_routing_scheme(&g, &ConstructionConfig::new(k, seed)).unwrap();
        let truth = all_pairs_dijkstra(&g);
        let bound = built.params.sketch_stretch_bound();
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let est = built.sketches.query(u, v).unwrap();
                assert!(est.estimate >= truth[u][v], "k={k} {u}->{v} undercuts");
                assert!(
                    est.estimate as f64 <= bound * truth[u][v] as f64 + 1e-9,
                    "k={k} {u}->{v}: {} vs {}",
                    est.estimate,
                    truth[u][v]
                );
                assert!(est.iterations < k, "query used more than k-1 iterations");
            }
        }
    }
}

#[test]
fn sketch_sizes_scale_like_n_to_one_over_k() {
    let g = erdos_renyi_connected(&GeneratorConfig::new(180, 5).with_weights(1, 60), 0.045);
    let mut sizes = Vec::new();
    for k in [1usize, 2, 4] {
        let built = build_routing_scheme(&g, &ConstructionConfig::new(k, 5)).unwrap();
        sizes.push(built.sketches.avg_sketch_words());
        // Claim 2: at most O~(n^{1/k}) cluster entries + k pivot entries.
        assert!(built.sketches.max_sketch_words() <= 2 * built.params.overlap_bound() + 2 * k + 1);
    }
    // Sketches shrink as k grows (k=1 stores essentially everything).
    assert!(sizes[0] > sizes[1]);
    assert!(
        sizes[1] > sizes[2] * 0.8,
        "k=2 vs k=4: {} vs {}",
        sizes[1],
        sizes[2]
    );
}

#[test]
fn sketches_work_on_geometric_graphs_with_odd_k() {
    let g = random_geometric_connected(&GeneratorConfig::new(100, 9).with_weights(1, 100), 0.18);
    let built = build_routing_scheme(&g, &ConstructionConfig::new(5, 9)).unwrap();
    let truth = all_pairs_dijkstra(&g);
    let bound = built.params.sketch_stretch_bound();
    for u in (0..100).step_by(7) {
        for v in (0..100).step_by(3) {
            if u == v {
                continue;
            }
            let est = built.sketches.query(u, v).unwrap();
            assert!(est.estimate >= truth[u][v]);
            assert!(est.estimate as f64 <= bound * truth[u][v] as f64 + 1e-9);
        }
    }
}

#[test]
fn routing_stretch_never_better_than_sketch_lower_bound() {
    // The routed path length is at least the true distance, and the sketch
    // estimate is too; both are consistent views of the same cluster family.
    let g = erdos_renyi_connected(&GeneratorConfig::new(50, 13).with_weights(1, 40), 0.12);
    let built = build_routing_scheme(&g, &ConstructionConfig::new(3, 13)).unwrap();
    let truth = all_pairs_dijkstra(&g);
    for u in (0..50).step_by(5) {
        for v in (0..50).step_by(3) {
            if u == v {
                continue;
            }
            let est = built.sketches.query(u, v).unwrap().estimate;
            let routed = built
                .scheme
                .route_with_exact(&g, u, v, truth[u][v])
                .unwrap()
                .length;
            assert!(est >= truth[u][v]);
            assert!(routed >= truth[u][v]);
        }
    }
}
