//! Property suite for the `en_obs` metric primitives: concurrent
//! accumulation and merging must be *exactly* equivalent to sequential
//! accumulation — counters, histogram bucket vectors, counts, and sums are
//! all order-independent, merge-associative, and lossless (up to the
//! documented saturation at `u64::MAX`).

use std::sync::Arc;

use proptest::prelude::*;

use en_obs::{Counter, Histogram, HISTOGRAM_BUCKETS};

/// Shards `values` across `threads` workers, each recording into its own
/// histogram, then merges the shards into one — the parallel pipeline the
/// per-worker metrics take before export.
fn concurrent_histogram(values: &[u64], threads: usize) -> Histogram {
    let shards: Vec<Histogram> = (0..threads).map(|_| Histogram::new()).collect();
    let shards = Arc::new(shards);
    std::thread::scope(|scope| {
        for (t, chunk) in values
            .chunks(values.len().div_ceil(threads).max(1))
            .enumerate()
        {
            let shards = Arc::clone(&shards);
            scope.spawn(move || {
                for &v in chunk {
                    shards[t].record(v);
                }
            });
        }
    });
    let merged = Histogram::new();
    for shard in shards.iter() {
        merged.merge_from(shard);
    }
    merged
}

/// Same sharded-record-then-merge pipeline for counters.
fn concurrent_counter(deltas: &[u64], threads: usize) -> Counter {
    let shards: Vec<Counter> = (0..threads).map(|_| Counter::new()).collect();
    let shards = Arc::new(shards);
    std::thread::scope(|scope| {
        for (t, chunk) in deltas
            .chunks(deltas.len().div_ceil(threads).max(1))
            .enumerate()
        {
            let shards = Arc::clone(&shards);
            scope.spawn(move || {
                for &d in chunk {
                    shards[t].add(d);
                }
            });
        }
    });
    let merged = Counter::new();
    for shard in shards.iter() {
        merged.merge_from(shard);
    }
    merged
}

/// Decodes a `(case, payload)` pair into a value from one of the histogram
/// regimes: zero, small ints, exact powers of two, bucket upper edges
/// (including `u64::MAX`), and arbitrary magnitudes.
fn decode_value((case, payload): (u64, u64)) -> u64 {
    match case % 5 {
        0 => 0,
        1 => payload % 16,
        2 => 1u64 << (payload % 64),
        3 => match payload % 64 {
            63 => u64::MAX,
            e => (1u64 << (e + 1)) - 1,
        },
        _ => payload,
    }
}

/// Values spanning every histogram regime (the vendored proptest has no
/// `prop_oneof!`, so regimes are selected via [`decode_value`]).
fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec((0u64..5, 0u64..u64::MAX), 0..400)
        .prop_map(|pairs| pairs.into_iter().map(decode_value).collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// Concurrent sharded histogram recording + merge equals one
    /// sequential histogram fed the same values, bucket for bucket.
    #[test]
    fn concurrent_histogram_merge_equals_sequential(
        values in arb_values(),
        threads in 1usize..9,
    ) {
        let sequential = Histogram::new();
        for &v in &values {
            sequential.record(v);
        }
        let merged = concurrent_histogram(&values, threads);
        prop_assert_eq!(merged.bucket_counts(), sequential.bucket_counts());
        prop_assert_eq!(merged.count(), sequential.count());
        prop_assert_eq!(merged.sum(), sequential.sum());
        prop_assert_eq!(merged.count(), values.len() as u64);
        // The bucket vector itself accounts every recorded value exactly once.
        let bucketed: u64 = merged.bucket_counts().iter().sum();
        prop_assert_eq!(bucketed, values.len() as u64);
    }

    /// Concurrent sharded counter adds + merge equals the saturating
    /// sequential sum.
    #[test]
    fn concurrent_counter_merge_equals_sequential(
        deltas in arb_values(),
        threads in 1usize..9,
    ) {
        let expected = deltas
            .iter()
            .fold(0u64, |acc, &d| acc.saturating_add(d));
        let merged = concurrent_counter(&deltas, threads);
        prop_assert_eq!(merged.value(), expected);
    }

    /// Merging is associative: folding shards left-to-right or pairwise
    /// produces the same histogram.
    #[test]
    fn histogram_merge_is_associative(
        values in arb_values(),
    ) {
        let (a, b, c) = (Histogram::new(), Histogram::new(), Histogram::new());
        for (i, &v) in values.iter().enumerate() {
            [&a, &b, &c][i % 3].record(v);
        }
        // ((a ⊕ b) ⊕ c)
        let left = Histogram::new();
        left.merge_from(&a);
        left.merge_from(&b);
        left.merge_from(&c);
        // (a ⊕ (b ⊕ c))
        let bc = Histogram::new();
        bc.merge_from(&b);
        bc.merge_from(&c);
        let right = Histogram::new();
        right.merge_from(&a);
        right.merge_from(&bc);
        prop_assert_eq!(left.bucket_counts(), right.bucket_counts());
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.sum(), right.sum());
    }

    /// Every value lands in exactly the bucket whose range contains it.
    #[test]
    fn bucket_index_is_the_range_inverse(pair in (0u64..5, 0u64..u64::MAX)) {
        let value = decode_value(pair);
        let i = Histogram::bucket_index(value);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        prop_assert!(value <= Histogram::bucket_le(i));
        if i > 0 {
            prop_assert!(value > Histogram::bucket_le(i - 1));
        }
    }
}
