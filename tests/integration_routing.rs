//! End-to-end integration tests: the full distributed construction followed by
//! hop-by-hop packet forwarding, across workloads, parameters and seeds.

use en_graph::bfs::hop_diameter;
use en_graph::generators::{
    caterpillar, erdos_renyi_connected, grid, random_geometric_connected, ring, two_tier_isp,
    GeneratorConfig,
};
use en_graph::WeightedGraph;
use en_routing::construction::{build_routing_scheme, ConstructionConfig};
use en_routing::stretch::{measure_stretch_all_pairs, measure_stretch_sampled};

fn assert_scheme_sound(g: &WeightedGraph, k: usize, seed: u64, all_pairs: bool) {
    let built = build_routing_scheme(g, &ConstructionConfig::new(k, seed))
        .unwrap_or_else(|e| panic!("construction failed (k={k}, seed={seed}): {e}"));
    // Structural invariants.
    assert!(built.family.trees_are_valid_in(g));
    assert!(built.family.max_overlap() <= built.params.overlap_bound());
    let slack = (1.0 + built.params.epsilon()).powi(4);
    assert!(built.family.root_estimates_within(g, slack));
    // Routing invariants.
    let report = if all_pairs {
        measure_stretch_all_pairs(g, &built.scheme)
    } else {
        measure_stretch_sampled(g, &built.scheme, 300, seed ^ 0xF00D)
    };
    assert_eq!(
        report.failures, 0,
        "k={k} seed={seed}: some pairs failed to route"
    );
    assert!(
        report.max_stretch <= built.params.stretch_bound() + 1e-9,
        "k={k} seed={seed}: stretch {} exceeds bound {}",
        report.max_stretch,
        built.params.stretch_bound()
    );
}

#[test]
fn erdos_renyi_all_pairs_small() {
    for k in [1, 2, 3] {
        let g = erdos_renyi_connected(
            &GeneratorConfig::new(48, 3 + k as u64).with_weights(1, 50),
            0.12,
        );
        assert_scheme_sound(&g, k, 3 + k as u64, true);
    }
}

#[test]
fn erdos_renyi_sampled_medium_even_and_odd_k() {
    for (k, seed) in [(4usize, 10u64), (5, 11)] {
        let g = erdos_renyi_connected(&GeneratorConfig::new(150, seed).with_weights(1, 100), 0.05);
        assert_scheme_sound(&g, k, seed, false);
    }
}

#[test]
fn geometric_graph_routing() {
    let g = random_geometric_connected(&GeneratorConfig::new(120, 21).with_weights(1, 100), 0.16);
    assert_scheme_sound(&g, 3, 21, false);
}

#[test]
fn isp_topology_routing() {
    let g = two_tier_isp(&GeneratorConfig::new(140, 31).with_weights(1, 60), 0.12);
    assert_scheme_sound(&g, 4, 31, false);
}

#[test]
fn grid_topology_routing() {
    let g = grid(&GeneratorConfig::new(100, 41).with_weights(1, 20), 10, 10);
    assert_scheme_sound(&g, 2, 41, false);
}

#[test]
fn ring_topology_routing_large_diameter() {
    // A ring has hop-diameter n/2: the D-dependent terms dominate.
    let g = ring(&GeneratorConfig::new(60, 51).with_weights(1, 10));
    assert_eq!(hop_diameter(&g), 30);
    assert_scheme_sound(&g, 2, 51, true);
}

#[test]
fn caterpillar_topology_routing() {
    let g = caterpillar(&GeneratorConfig::new(80, 61).with_weights(1, 30));
    assert_scheme_sound(&g, 3, 61, false);
}

#[test]
fn unweighted_graph_routing() {
    let g = erdos_renyi_connected(&GeneratorConfig::new(70, 71).unweighted(), 0.08);
    assert_scheme_sound(&g, 3, 71, false);
}

#[test]
fn repeated_seeds_give_identical_schemes() {
    let g = erdos_renyi_connected(&GeneratorConfig::new(60, 81).with_weights(1, 40), 0.1);
    let a = build_routing_scheme(&g, &ConstructionConfig::new(3, 7)).unwrap();
    let b = build_routing_scheme(&g, &ConstructionConfig::new(3, 7)).unwrap();
    assert_eq!(a.total_rounds(), b.total_rounds());
    assert_eq!(a.scheme.max_table_words(), b.scheme.max_table_words());
    assert_eq!(a.scheme.max_label_words(), b.scheme.max_label_words());
    let ra = a.scheme.route(&g, 5, 50).unwrap();
    let rb = b.scheme.route(&g, 5, 50).unwrap();
    assert_eq!(ra.path, rb.path);
}

#[test]
fn label_and_table_sizes_match_theorem_5_shape() {
    let n = 160;
    let g = erdos_renyi_connected(&GeneratorConfig::new(n, 91).with_weights(1, 80), 0.05);
    let log2n = (n as f64).log2();
    for k in [2usize, 4] {
        let built = build_routing_scheme(&g, &ConstructionConfig::new(k, 91)).unwrap();
        // Labels: O(k log^2 n) words.
        assert!(
            (built.scheme.max_label_words() as f64) <= 8.0 * k as f64 * log2n * log2n,
            "k={k}: label {} too large",
            built.scheme.max_label_words()
        );
        // Tables: O~(n^{1/k}) tree tables, each O(log n) words, plus the
        // level-0 member labels of the 4k-5 refinement.
        let per_vertex_trees: usize = (0..n)
            .map(|v| built.scheme.trees_containing(v))
            .max()
            .unwrap();
        assert!(
            per_vertex_trees <= built.params.overlap_bound(),
            "k={k}: vertex participates in {per_vertex_trees} trees"
        );
    }
}

#[test]
fn every_vertex_can_reach_every_other_on_a_fixed_instance() {
    let g = erdos_renyi_connected(&GeneratorConfig::new(40, 101).with_weights(1, 30), 0.15);
    let built = build_routing_scheme(&g, &ConstructionConfig::new(3, 101)).unwrap();
    for u in g.nodes() {
        for v in g.nodes() {
            if u == v {
                continue;
            }
            let out = built.scheme.route(&g, u, v).unwrap();
            assert_eq!(out.path.nodes().first(), Some(&u));
            assert_eq!(out.path.nodes().last(), Some(&v));
            assert!(out.path.is_valid_in(&g));
        }
    }
}
