//! Property suite for the `en_wire` serving subsystem: a snapshot
//! round-trip must be observationally *perfect*.
//!
//! Across random graphs, `k ∈ {2, 3}`, and both the exact and the
//! approximate (end-to-end distributed) constructions:
//!
//! * **Bit-identical outcomes**: for every sampled pair, the
//!   [`QueryEngine`] answer off the flat columns equals the in-memory
//!   [`RoutingScheme::route`] answer — same tree, same level, same path,
//!   same length, same exact distance, same stretch *bits* — and
//!   `find_tree` picks the same tree with the same label vertex.
//! * **Header accounting**: the snapshot header's Table-1 word stats equal
//!   the in-memory scheme's own counters, and serialization is
//!   deterministic (same scheme → same bytes).
//! * **Rejection**: truncated buffers — including cuts at every section
//!   boundary — flipped magic/version words, and a corrupted section offset
//!   are rejected by [`FlatScheme::from_bytes`] rather than risking a panic
//!   at query time.
//! * **Integrity**: the per-section + header checksums detect *any*
//!   single-bit flip anywhere in the buffer — including the v3 member-slot
//!   rank index — so the accepted set is exactly the pristine snapshot
//!   (which routes bit-identically by the round-trip properties).
//! * **Version negotiation**: v2 bytes presented to the v3 reader fail
//!   with a structured `UnsupportedVersion`, not a checksum mismatch.

use proptest::prelude::*;

use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
use en_graph::WeightedGraph;
use en_routing::access::{self, RouteCache};
use en_routing::construction::{build_routing_scheme, ConstructionConfig};
use en_routing::exact::exact_cluster_family;
use en_routing::scheme::RoutingScheme;
use en_routing::{Hierarchy, SchemeParams};
use en_wire::{serialize, CacheConfig, FlatScheme, MappedSnapshot, QueryEngine, WireError};

fn arb_graph() -> impl Strategy<Value = (WeightedGraph, u64)> {
    (16usize..56, 0u64..10_000, 1u64..60).prop_map(|(n, seed, max_w)| {
        (
            erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, max_w), 0.12),
            seed,
        )
    })
}

/// The flat engine and the in-memory scheme agree bit for bit on every
/// sampled pair, on both the `route` and the `find_tree` surface.
fn check_engine_matches_scheme(g: &WeightedGraph, scheme: &RoutingScheme) {
    let bytes = serialize(scheme);
    // Determinism: serializing the same scheme twice yields the same buffer.
    assert_eq!(
        bytes,
        serialize(scheme),
        "serialization must be deterministic"
    );
    let flat = FlatScheme::from_bytes(&bytes).expect("snapshot validates");
    assert_eq!(flat.n(), scheme.n());
    assert_eq!(flat.k(), scheme.k());
    assert_eq!(flat.num_clusters(), scheme.centers().len());
    assert_eq!(flat.max_table_words(), scheme.max_table_words());
    assert_eq!(flat.max_label_words(), scheme.max_label_words());
    let engine = QueryEngine::new(flat, g).expect("graph matches snapshot");
    let n = g.num_nodes();
    for u in (0..n).step_by(3) {
        for v in (0..n).step_by(5) {
            if u == v {
                continue;
            }
            let (root_m, label_m) = scheme.find_tree(u, v).expect("in-memory find_tree");
            let (root_f, label_f) = engine.find_tree(u, v).expect("flat find_tree");
            assert_eq!(root_m, root_f, "{u}->{v}: tree choice differs");
            assert_eq!(label_m.vertex, label_f.vertex(), "{u}->{v}");

            let a = scheme.route(g, u, v).expect("in-memory route succeeds");
            let b = engine.route(u, v).expect("flat route succeeds");
            assert_eq!(a.tree_root, b.tree_root, "{u}->{v}: tree differs");
            assert_eq!(a.level, b.level, "{u}->{v}");
            assert_eq!(a.path, b.path, "{u}->{v}: paths differ");
            assert_eq!(a.length, b.length, "{u}->{v}");
            assert_eq!(a.exact, b.exact, "{u}->{v}");
            assert_eq!(
                a.stretch.to_bits(),
                b.stretch.to_bits(),
                "{u}->{v}: stretch bits differ"
            );
        }
    }
    // Out-of-range queries fail identically.
    assert!(engine.route(0, n + 7).is_err());
    assert!(scheme.route(g, 0, n + 7).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Exact families: snapshot round-trip preserves every outcome.
    #[test]
    fn exact_scheme_roundtrips_bit_identically(
        gs in arb_graph(),
        k in 2usize..4,
    ) {
        let (g, seed) = gs;
        let params = SchemeParams::new(k, g.num_nodes(), seed);
        let hierarchy = Hierarchy::sample(&params);
        let family = exact_cluster_family(&g, &hierarchy);
        let scheme = RoutingScheme::assemble(&family, seed);
        check_engine_matches_scheme(&g, &scheme);
    }

    /// Approximate (end-to-end distributed) schemes round-trip too.
    #[test]
    fn approx_scheme_roundtrips_bit_identically(
        gs in arb_graph(),
        k in 2usize..4,
    ) {
        let (g, seed) = gs;
        let built = build_routing_scheme(&g, &ConstructionConfig::new(k, seed)).unwrap();
        check_engine_matches_scheme(&g, &built.scheme);
    }

    /// Corruption: every truncation of the buffer — including at every
    /// section boundary — and targeted header edits are rejected with an
    /// error, never a panic.
    #[test]
    fn corrupted_snapshots_are_rejected(gs in arb_graph()) {
        let (g, seed) = gs;
        let params = SchemeParams::new(2, g.num_nodes(), seed);
        let hierarchy = Hierarchy::sample(&params);
        let family = exact_cluster_family(&g, &hierarchy);
        let scheme = RoutingScheme::assemble(&family, seed);
        let bytes = serialize(&scheme);

        // Truncations at word and sub-word granularity.
        for cut in [1, 7, 8, 64, bytes.len() / 2, bytes.len() - 8, bytes.len() - 1] {
            let truncated = &bytes[..bytes.len() - cut];
            prop_assert!(
                FlatScheme::from_bytes(truncated).is_err(),
                "truncating {cut} bytes must be rejected"
            );
        }
        prop_assert_eq!(
            FlatScheme::from_bytes(&[]).unwrap_err(),
            WireError::Truncated { expected: 48 * 8, actual: 0 }
        );

        // Exhaustive boundary sweep: cut the buffer exactly at every section
        // start (losing that section and everything after it), one word
        // before, and one byte past each boundary.
        let manifest = FlatScheme::from_bytes(&bytes).expect("pristine validates").manifest();
        for span in &manifest.sections {
            let at = span.start_word * 8;
            for cut in [at, at.saturating_sub(8), at + 1] {
                if cut >= bytes.len() {
                    continue;
                }
                prop_assert!(
                    FlatScheme::from_bytes(&bytes[..cut]).is_err(),
                    "cut at {cut} ({:?} boundary {at}) must be rejected",
                    span.section
                );
            }
        }

        // The v3 member-slot rank index is protected like every other
        // section: bit flips anywhere in its span fail its checksum, and a
        // truncation landing inside it is rejected by the size check.
        let ms = manifest
            .sections
            .iter()
            .find(|s| s.section.name() == "member_slots")
            .expect("v3 snapshots carry the rank index");
        prop_assert!(ms.words > 0, "every scheme has cluster members to index");
        for i in [0, ms.words / 2, ms.words - 1] {
            let mut flipped = bytes.clone();
            flipped[(ms.start_word + i) * 8] ^= 1;
            prop_assert!(
                FlatScheme::from_bytes(&flipped).is_err(),
                "flip in member_slots word {i} must be rejected"
            );
        }
        let cut = (ms.start_word + ms.words / 2) * 8;
        prop_assert!(FlatScheme::from_bytes(&bytes[..cut]).is_err());

        // Flipped magic / unsupported version.
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        prop_assert!(matches!(
            FlatScheme::from_bytes(&bad_magic),
            Err(WireError::BadMagic { .. })
        ));
        let mut bad_version = bytes.clone();
        bad_version[8] = 99;
        prop_assert!(matches!(
            FlatScheme::from_bytes(&bad_version),
            Err(WireError::UnsupportedVersion { found: 99 })
        ));

        // Version negotiation: a buffer declaring the retired v2 format is
        // refused with the structured version error — the version word is
        // examined before any checksum, so the caller learns "old format",
        // never a misleading checksum mismatch. Both the validating and the
        // shape-only open refuse it.
        let mut v2_bytes = bytes.clone();
        v2_bytes[8] = 2;
        prop_assert!(matches!(
            FlatScheme::from_bytes(&v2_bytes),
            Err(WireError::UnsupportedVersion { found: 2 })
        ));
        prop_assert!(matches!(
            FlatScheme::from_bytes_unvalidated(&v2_bytes),
            Err(WireError::UnsupportedVersion { found: 2 })
        ));

        // A corrupted section offset (point the cluster table past the end).
        let mut bad_section = bytes.clone();
        let off = (11 + 1) * 8; // header word 12: second section offset
        bad_section[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        prop_assert!(FlatScheme::from_bytes(&bad_section).is_err());

        // A corrupted label-pool offset inside a label entry column: zero out
        // the label pool section length by shrinking the total… simpler and
        // still structural: declare fewer clusters than the centre index
        // references.
        let mut bad_clusters = bytes.clone();
        bad_clusters[4 * 8..4 * 8 + 8].copy_from_slice(&0u64.to_le_bytes());
        prop_assert!(FlatScheme::from_bytes(&bad_clusters).is_err());
    }

    /// Integrity sweep: flipping any single bit of any header field — and
    /// any sampled bit anywhere in the buffer — is detected at load.
    /// Checksums cover every byte, so the accepted set is exactly the
    /// pristine buffer; whatever validates routes bit-identically because
    /// it *is* the original snapshot.
    #[test]
    fn any_single_bit_flip_is_detected(
        word in 0usize..48,
        bit in 0usize..64,
        permille in 0usize..1000,
        body_bit in 0usize..8,
    ) {
        // One snapshot for the whole sweep (proptest re-enters per case, so
        // keep the build small and deterministic).
        let g = erdos_renyi_connected(
            &GeneratorConfig::new(48, 77).with_weights(1, 20),
            0.12,
        );
        let params = SchemeParams::new(2, g.num_nodes(), 77);
        let hierarchy = Hierarchy::sample(&params);
        let family = exact_cluster_family(&g, &hierarchy);
        let scheme = RoutingScheme::assemble(&family, 77);
        let bytes = serialize(&scheme);

        // Header flip: one bit of the proptest-chosen header field.
        let mut header_flipped = bytes.clone();
        header_flipped[word * 8 + bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            FlatScheme::from_bytes(&header_flipped).is_err(),
            "header word {word} bit {bit} flip must be rejected"
        );

        // Body flip: one bit at a proptest-sampled byte anywhere at all.
        let at = (bytes.len() - 1) * permille / 999;
        let mut body_flipped = bytes.clone();
        body_flipped[at] ^= 1 << body_bit;
        prop_assert!(
            FlatScheme::from_bytes(&body_flipped).is_err(),
            "byte {at} bit {body_bit} flip must be rejected"
        );

        // And the untouched buffer still validates and routes: the accepted
        // set is the pristine snapshot, whose outcomes the round-trip
        // properties above prove bit-identical.
        let flat = FlatScheme::from_bytes(&bytes).expect("pristine validates");
        let engine = QueryEngine::new(flat, &g).expect("graph matches");
        let a = engine.route(1, 40).expect("routes");
        let b = scheme.route(&g, 1, 40).expect("routes");
        prop_assert_eq!(a.path, b.path);
        prop_assert_eq!(a.length, b.length);
    }

    /// The hot-route cache is observationally invisible: at every capacity
    /// — disabled, one slot, small, and larger than the whole key set —
    /// cached routing returns bit-identical outcomes on all three storages
    /// (in-memory scheme, fast flat, checked flat), and the per-shard
    /// batch surface agrees with a cache-disabled engine.
    #[test]
    fn cached_routing_is_bit_identical_on_every_storage(
        gs in arb_graph(),
        k in 2usize..4,
    ) {
        let (g, seed) = gs;
        let built = build_routing_scheme(&g, &ConstructionConfig::new(k, seed)).unwrap();
        let scheme = &built.scheme;
        let bytes = serialize(scheme);
        let flat = FlatScheme::from_bytes(&bytes).expect("snapshot validates");
        let engine = QueryEngine::new(flat, &g).expect("sizes match");
        let n = g.num_nodes();

        for capacity in [0usize, 1, 64, 4096] {
            let mut mem = RouteCache::new(capacity);
            let mut fast = RouteCache::new(capacity);
            let mut checked = RouteCache::new(capacity);
            let mut lookups = 0u64;
            // Two passes so capacities that can hold the working set replay
            // cached decisions on the second sweep.
            for _pass in 0..2 {
                for u in (0..n).step_by(4) {
                    for v in (0..n).step_by(7) {
                        if u == v {
                            continue;
                        }
                        lookups += 1;
                        let plain = access::forward_via(&scheme, u, v).unwrap();
                        let cached =
                            access::forward_via_cached(&scheme, &mut mem, u, v).unwrap();
                        assert_eq!(plain, cached, "in-memory, cap {capacity}: {u}->{v}");

                        let a = engine.route_with_exact(u, v, 0).unwrap();
                        let b = engine.route_with_cache(&mut fast, u, v, 0).unwrap();
                        let c = engine
                            .route_checked_with_cache(&mut checked, u, v, 0)
                            .unwrap();
                        for (label, o) in [("fast", &b), ("checked", &c)] {
                            assert_eq!(a.tree_root, o.tree_root, "{label} cap {capacity}");
                            assert_eq!(a.level, o.level, "{label} cap {capacity}");
                            assert_eq!(a.path, o.path, "{label} cap {capacity}");
                            assert_eq!(a.length, o.length, "{label} cap {capacity}");
                            assert_eq!(
                                a.stretch.to_bits(),
                                o.stretch.to_bits(),
                                "{label} cap {capacity}"
                            );
                        }
                    }
                }
            }
            // Counter accounting: every lookup is a hit or a miss, on every
            // storage; a disabled cache never hits.
            for (label, cache) in [("mem", &mem), ("fast", &fast), ("checked", &checked)] {
                let s = cache.stats();
                prop_assert_eq!(s.hits + s.misses, lookups, "{} cap {}", label, capacity);
                if capacity == 0 {
                    prop_assert_eq!(s.hits, 0, "{} disabled cache hit", label);
                }
            }
        }

        // Batch surface: a cache-enabled engine (per-shard caches) returns
        // the same outcomes and the same normalized stats as the default
        // cache-disabled one, at several thread counts.
        let cached_engine = QueryEngine::new(FlatScheme::from_bytes(&bytes).unwrap(), &g)
            .expect("sizes match")
            .with_cache(CacheConfig { capacity: 64 });
        let pairs = en_wire::generate_pairs(&g, &en_wire::PairWorkload::Uniform, 200, seed);
        let base = engine.route_batch(&pairs, None, 1);
        for threads in [1usize, 3] {
            let cached = cached_engine.route_batch(&pairs, None, threads);
            prop_assert_eq!(
                base.stats.without_cache_counters(),
                cached.stats.without_cache_counters()
            );
            for (i, (a, b)) in base.outcomes.iter().zip(&cached.outcomes).enumerate() {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(a.path, b.path, "batch pair {i}, {threads} threads");
                assert_eq!(a.length, b.length, "batch pair {i}");
                assert_eq!(a.stretch.to_bits(), b.stretch.to_bits(), "batch pair {i}");
            }
            prop_assert_eq!(
                cached.stats.cache_hits + cached.stats.cache_misses,
                pairs.len() as u64
            );
        }
    }

    /// A mapped open serves the snapshot byte-identically to the owned
    /// read — the flat reader validates the same buffer and every routing
    /// outcome matches bit for bit — for both the exact and the
    /// approximate construction and `k ∈ {2, 3}`.
    #[test]
    fn mapped_snapshots_round_trip_bit_identically(
        gs in arb_graph(),
        k in 2usize..4,
        use_exact in 0usize..2,
    ) {
        let (g, seed) = gs;
        let use_exact = use_exact == 1;
        let scheme = if use_exact {
            let params = SchemeParams::new(k, g.num_nodes(), seed);
            let hierarchy = Hierarchy::sample(&params);
            RoutingScheme::assemble(&exact_cluster_family(&g, &hierarchy), seed)
        } else {
            build_routing_scheme(&g, &ConstructionConfig::new(k, seed))
                .unwrap()
                .scheme
        };
        let bytes = serialize(&scheme);

        let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
        std::fs::create_dir_all(dir).unwrap();
        let path = dir.join(format!("mmap_roundtrip_{seed}_{k}_{use_exact}.enwire"));
        std::fs::write(&path, &bytes).unwrap();
        let mapped = MappedSnapshot::open(&path).unwrap();
        prop_assert_eq!(mapped.bytes(), &bytes[..]);
        // On this target a shape-valid snapshot takes the mapped fast path.
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        prop_assert!(mapped.is_mapped(), "shape-valid snapshot must map");

        let flat_mapped = FlatScheme::from_bytes(mapped.bytes()).expect("mapped validates");
        let flat_owned = FlatScheme::from_bytes(&bytes).expect("owned validates");
        let em = QueryEngine::new(flat_mapped, &g).expect("sizes match");
        let eo = QueryEngine::new(flat_owned, &g).expect("sizes match");
        let n = g.num_nodes();
        for u in (0..n).step_by(5) {
            for v in (0..n).step_by(9) {
                if u == v {
                    continue;
                }
                let a = eo.route_with_exact(u, v, 0).unwrap();
                let b = em.route_with_exact(u, v, 0).unwrap();
                assert_eq!(a.tree_root, b.tree_root, "{u}->{v}");
                assert_eq!(a.path, b.path, "{u}->{v}");
                assert_eq!(a.length, b.length, "{u}->{v}");
                assert_eq!(a.stretch.to_bits(), b.stretch.to_bits(), "{u}->{v}");
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
