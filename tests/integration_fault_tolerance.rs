//! Fault tolerance of the serving stack, end to end: snapshot integrity
//! rejects corruption at load, the epoch store hot-swaps without tearing
//! concurrent readers, and corrupt bytes forced in past validation degrade
//! to per-query errors instead of crashing batches.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
use en_graph::WeightedGraph;
use en_routing::construction::{build_routing_scheme, ConstructionConfig};
use en_wire::faultsim::{drill_loads, offset_scramble_plan, section_flip_plan, truncation_plan};
use en_wire::{generate_pairs, serialize, FlatScheme, PairWorkload, QueryEngine, SchemeStore};

fn graph(n: usize, seed: u64) -> WeightedGraph {
    erdos_renyi_connected(
        &GeneratorConfig::new(n, seed).with_weights(1, 30),
        8.0 / n as f64,
    )
}

fn snapshot_of(g: &WeightedGraph, k: usize, seed: u64) -> Vec<u8> {
    let built = build_routing_scheme(g, &ConstructionConfig::new(k, seed)).unwrap();
    serialize(&built.scheme)
}

/// Every seeded fault plan is rejected at load time with a structured
/// error — zero panics, zero silently-accepted corruption.
#[test]
fn corruption_is_detected_at_load() {
    let g = graph(150, 5);
    let bytes = snapshot_of(&g, 2, 5);
    let manifest = FlatScheme::from_bytes(&bytes).unwrap().manifest();

    let mut report = drill_loads(&bytes, &truncation_plan(&manifest));
    report.merge(drill_loads(&bytes, &section_flip_plan(&manifest, 21, 6)));
    report.merge(drill_loads(
        &bytes,
        &offset_scramble_plan(&manifest, 22, 32),
    ));
    assert!(
        report.all_handled(),
        "undetected faults: {:?}",
        report.undetected
    );
    assert_eq!(report.detected, report.injected);
    assert!(
        report.injected > 20,
        "the plans must actually inject faults"
    );
}

/// Corrupt bytes forced in past validation (corruption striking after
/// load) degrade to per-query errors: batches complete at every thread
/// count, the process survives, and shard accounting still adds up.
#[test]
fn post_load_corruption_degrades_instead_of_crashing() {
    let g = graph(150, 6);
    let bytes = snapshot_of(&g, 2, 6);
    let manifest = FlatScheme::from_bytes(&bytes).unwrap().manifest();
    let pairs = generate_pairs(&g, &PairWorkload::Uniform, 300, 3);

    let mut plan = section_flip_plan(&manifest, 31, 4);
    plan.extend(offset_scramble_plan(&manifest, 32, 16));
    let mut served = 0usize;
    for case in &plan {
        let corrupt = case.apply(&bytes);
        // Shape-invalid corruption is already covered by the load drill.
        let Ok(flat) = FlatScheme::from_bytes_unvalidated(&corrupt) else {
            continue;
        };
        let Ok(engine) = QueryEngine::new(flat, &g) else {
            continue;
        };
        served += 1;
        for threads in [1usize, 2, 8] {
            let batch = engine.route_batch(&pairs, None, threads);
            assert_eq!(batch.outcomes.len(), pairs.len(), "{}", case.name);
            assert_eq!(
                batch.stats.delivered + batch.stats.failed,
                pairs.len(),
                "{} at {threads} threads",
                case.name
            );
            assert_eq!(
                batch.shards.iter().map(|s| s.queries).sum::<usize>(),
                pairs.len(),
                "{} at {threads} threads",
                case.name
            );
            assert_eq!(
                batch.shards.iter().map(|s| s.errors).sum::<usize>(),
                batch.stats.failed,
                "{} at {threads} threads",
                case.name
            );
            // A panicked shard must be fully accounted as retried.
            for s in &batch.shards {
                if s.panicked {
                    assert_eq!(s.retries, s.queries, "{}", case.name);
                }
            }
            assert_eq!(
                batch.stats.shard_panics,
                batch.shards.iter().filter(|s| s.panicked).count(),
                "{}",
                case.name
            );
        }
    }
    assert!(served > 0, "some faults must be shape-valid and get served");
}

/// `route_checked` agrees bit-for-bit with the fast path on a healthy
/// snapshot — the degraded path is a slower twin, not a different router.
#[test]
fn checked_route_matches_fast_path_on_healthy_snapshot() {
    let g = graph(120, 7);
    let bytes = snapshot_of(&g, 3, 7);
    let flat = FlatScheme::from_bytes(&bytes).unwrap();
    let engine = QueryEngine::new(flat, &g).unwrap();
    for &(u, v) in &generate_pairs(&g, &PairWorkload::Uniform, 200, 9) {
        let fast = engine.route_with_exact(u, v, 0).unwrap();
        let checked = engine.route_checked(u, v, 0).unwrap();
        assert_eq!(fast.tree_root, checked.tree_root, "{u}->{v}");
        assert_eq!(fast.level, checked.level, "{u}->{v}");
        assert_eq!(fast.path, checked.path, "{u}->{v}");
        assert_eq!(fast.length, checked.length, "{u}->{v}");
    }
    // Out-of-range endpoints are structured errors on both paths.
    let n = g.num_nodes();
    assert!(engine.route_with_exact(n, 0, 0).is_err());
    assert!(engine.route_checked(n, 0, 0).is_err());
    assert!(engine.route_checked(0, n + 7, 0).is_err());
}

/// The hot-swap property: concurrent readers always observe a whole epoch
/// (old or new, never a mix), failed publishes leave the prior epoch
/// serving, and pinned epochs outlive the swap.
#[test]
fn hot_swap_never_tears_concurrent_readers() {
    let g = graph(150, 8);
    let bytes_a = snapshot_of(&g, 2, 8);
    let bytes_b = snapshot_of(&g, 2, 9);
    let pairs = generate_pairs(&g, &PairWorkload::Uniform, 150, 13);

    let outcomes_for = |bytes: &[u8]| -> Vec<Option<(usize, u64)>> {
        let flat = FlatScheme::from_bytes(bytes).unwrap();
        let engine = QueryEngine::new(flat, &g).unwrap();
        engine
            .route_batch(&pairs, None, 2)
            .outcomes
            .iter()
            .map(|o| o.as_ref().ok().map(|r| (r.tree_root, r.length)))
            .collect()
    };
    let expect_a = outcomes_for(&bytes_a);
    let expect_b = outcomes_for(&bytes_b);

    let store = Arc::new(SchemeStore::new(bytes_a.clone()).unwrap());
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let store = Arc::clone(&store);
                let (stop, g, pairs) = (&stop, &g, &pairs);
                let (expect_a, expect_b) = (&expect_a, &expect_b);
                scope.spawn(move || {
                    let mut batches = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let epoch = store.current();
                        let engine = QueryEngine::new(epoch.scheme(), g).unwrap();
                        let got: Vec<Option<(usize, u64)>> = engine
                            .route_batch(pairs, None, 2)
                            .outcomes
                            .iter()
                            .map(|o| o.as_ref().ok().map(|r| (r.tree_root, r.length)))
                            .collect();
                        // Even epochs serve A, odd epochs serve B — and the
                        // batch must match its pinned epoch exactly.
                        let expect = if epoch.id() % 2 == 0 {
                            expect_a
                        } else {
                            expect_b
                        };
                        assert_eq!(&got, expect, "torn view at epoch {}", epoch.id());
                        batches += 1;
                    }
                    batches
                })
            })
            .collect();

        let pinned = store.current();
        for i in 0..30u64 {
            let next = if store.current_id() % 2 == 0 {
                &bytes_b
            } else {
                &bytes_a
            };
            store.publish(next.clone()).expect("valid publish lands");
            // A corrupt candidate must be rejected without disturbing the
            // serving epoch.
            let mut junk = next.clone();
            let at = (i as usize * 131) % junk.len();
            junk[at] ^= 0x04;
            let before = store.current_id();
            // The exact error depends on where the flip lands (BadMagic in
            // word 0, ChecksumMismatch elsewhere) — what matters is that it
            // is an error, not a swap.
            assert!(store.publish(junk).is_err());
            assert_eq!(store.current_id(), before, "failed publish must not swap");
        }
        stop.store(true, Ordering::Relaxed);
        let total: usize = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0, "readers must have routed at least one batch");

        // The epoch pinned before all 30 swaps is still whole and servable.
        assert_eq!(pinned.id(), 0);
        assert_eq!(pinned.bytes(), &bytes_a[..]);
        let engine = QueryEngine::new(pinned.scheme(), &g).unwrap();
        assert_eq!(engine.route_batch(&pairs, None, 1).stats.failed, 0);

        let stats = store.stats();
        assert_eq!(stats.published, 30);
        assert_eq!(stats.rejected, 30);
        assert_eq!(stats.current_epoch, 30);
    });
}
