//! Workspace-wiring smoke test: the full public pipeline — generate a graph,
//! build the routing scheme, route a packet, and query a distance sketch —
//! round-trips for k ∈ {2, 3}. This is intentionally small and fast: it is
//! the first test to fail if crate wiring (manifests, re-exports, features)
//! breaks, independent of the deeper per-theorem integration tests.

use en_graph::bfs::is_connected;
use en_graph::dijkstra::dijkstra;
use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
use en_routing::construction::{build_routing_scheme, ConstructionConfig};

/// The serving subsystem is part of the build graph: snapshot → zero-copy
/// load → flat query, through `en_wire`'s public surface.
#[test]
fn wire_snapshot_round_trips_through_the_build_graph() {
    let g = erdos_renyi_connected(&GeneratorConfig::new(48, 11).with_weights(1, 20), 0.15);
    let built = build_routing_scheme(&g, &ConstructionConfig::new(2, 11)).unwrap();
    let bytes = en_wire::serialize(&built.scheme);
    let flat = en_wire::FlatScheme::from_bytes(&bytes).expect("snapshot validates");
    assert_eq!(flat.n(), 48);
    let engine = en_wire::QueryEngine::new(flat, &g).expect("graph matches");
    let out = engine.route(0, 47).expect("flat delivery succeeds");
    let reference = built.scheme.route(&g, 0, 47).expect("delivery succeeds");
    assert_eq!(out.path, reference.path);
    assert_eq!(out.stretch.to_bits(), reference.stretch.to_bits());
}

#[test]
fn routing_and_sketches_round_trip_on_small_er_graph() {
    let g = erdos_renyi_connected(&GeneratorConfig::new(48, 11).with_weights(1, 20), 0.15);
    assert!(is_connected(&g));

    for k in [2usize, 3] {
        let built = build_routing_scheme(&g, &ConstructionConfig::new(k, 11))
            .unwrap_or_else(|e| panic!("construction failed for k={k}: {e}"));

        // Route several pairs and check delivery + the stretch guarantee.
        for (u, v) in [(0usize, 47usize), (3, 31), (17, 5)] {
            let out = built
                .scheme
                .route(&g, u, v)
                .unwrap_or_else(|e| panic!("routing {u}->{v} failed for k={k}: {e}"));
            assert_eq!(
                out.path.nodes().first(),
                Some(&u),
                "route must start at source"
            );
            assert_eq!(
                out.path.nodes().last(),
                Some(&v),
                "route must end at target"
            );
            assert!(
                out.stretch <= built.params.stretch_bound() + 1e-9,
                "stretch {} exceeds bound {} for k={k}",
                out.stretch,
                built.params.stretch_bound()
            );

            // Distance estimation: never below the true distance, and within
            // the sketch stretch bound.
            let exact = dijkstra(&g, u).dist[v];
            let est = built
                .sketches
                .query(u, v)
                .unwrap_or_else(|e| panic!("sketch query {u}->{v} failed for k={k}: {e}"));
            assert!(est.estimate >= exact, "sketch estimate below true distance");
            assert!(
                est.estimate as f64 <= built.params.sketch_stretch_bound() * exact as f64 + 1e-9,
                "sketch estimate {} exceeds bound for exact {} at k={k}",
                est.estimate,
                exact
            );
        }
    }
}
