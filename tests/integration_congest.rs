//! Integration tests for the CONGEST substrate: the simulator's round counts
//! and the primitives' outputs agree with the sequential references and with
//! the paper's stated bounds (with explicit constants).

use en_congest::bfs_tree::build_bfs_tree;
use en_congest::broadcast::{
    broadcast_rounds, convergecast_rounds, pipelined_broadcast, pipelined_convergecast,
};
use en_congest::flooding::FloodProtocol;
use en_congest::{SimulationConfig, Simulator};
use en_congest_algos::explore::distributed_exploration;
use en_congest_algos::theorem1::multi_source_hop_bounded;
use en_graph::bellman_ford::hop_bounded_distances;
use en_graph::bfs::{bfs, hop_diameter};
use en_graph::dijkstra::multi_source_dijkstra;
use en_graph::generators::{erdos_renyi_connected, grid, GeneratorConfig};

#[test]
fn flooding_round_count_equals_eccentricity() {
    let g = erdos_renyi_connected(&GeneratorConfig::new(100, 1), 0.05);
    let source = 17;
    let mut sim = Simulator::new(&g, SimulationConfig::default(), |v| {
        FloodProtocol::new(v == source)
    });
    let stats = sim.run();
    let ecc = bfs(&g, source).eccentricity();
    assert!(stats.rounds >= ecc && stats.rounds <= ecc + 2);
    assert!(!stats.hit_round_limit);
    // CONGEST discipline: flooding never queues more than one message per edge.
    assert_eq!(stats.max_edge_backlog, 1);
}

#[test]
fn bfs_tree_depth_equals_hop_diameter_bound() {
    let g = grid(&GeneratorConfig::new(64, 2), 8, 8);
    let res = build_bfs_tree(&g, 0);
    assert_eq!(res.depth, bfs(&g, 0).eccentricity());
    assert!(res.depth <= hop_diameter(&g));
    assert!(res.tree.is_subgraph_of(&g));
}

#[test]
fn lemma1_broadcast_and_convergecast_within_stated_rounds() {
    let g = erdos_renyi_connected(&GeneratorConfig::new(120, 3), 0.04);
    let messages: Vec<u64> = (0..40).collect();
    let b = pipelined_broadcast(&g, 5, &messages);
    assert!(b.stats.rounds <= broadcast_rounds(messages.len(), b.tree_depth) + 2);
    for v in g.nodes() {
        assert_eq!(b.received[v].len(), messages.len());
    }
    let per_node: Vec<Vec<u64>> = (0..120).map(|v| vec![v as u64]).collect();
    let c = pipelined_convergecast(&g, 5, &per_node);
    assert_eq!(c.at_root.len(), 120);
    assert!(c.stats.rounds <= convergecast_rounds(120, c.tree_depth) + 2);
}

#[test]
fn exploration_matches_sequential_reference_on_many_seeds() {
    for seed in 0..4u64 {
        let g = erdos_renyi_connected(&GeneratorConfig::new(70, seed).with_weights(1, 40), 0.08);
        let sources = vec![seed as usize % 70, (seed as usize * 13 + 5) % 70];
        let res = distributed_exploration(&g, &sources, g.num_nodes());
        let (dist, _) = multi_source_dijkstra(&g, &sources);
        assert_eq!(res.dist, dist, "seed {seed}");
        // Round count is bounded by the iteration budget plus drain slack.
        assert!(res.stats.rounds <= g.num_nodes() + 3);
    }
}

#[test]
fn theorem1_values_bracket_hop_bounded_distances() {
    let g = erdos_renyi_connected(&GeneratorConfig::new(80, 7).with_weights(1, 30), 0.06);
    let sources = vec![0, 11, 42];
    let b = 5;
    let t1 = multi_source_hop_bounded(&g, &sources, b, 0.1, 8);
    for (si, &s) in sources.iter().enumerate() {
        let reference = hop_bounded_distances(&g, s, b);
        for v in g.nodes() {
            // Inequality (2): d^(B) <= d_uv <= (1+eps) d^(B); our reproduction
            // returns the exact value.
            assert!(t1.dist_row(si)[v] >= reference.dist[v]);
            assert!(t1.dist_row(si)[v] as f64 <= 1.1 * reference.dist[v] as f64 + 1.0);
        }
    }
    // Remark 1 / inequality (3).
    for (si, _) in sources.iter().enumerate() {
        for v in g.nodes() {
            if let Some(p) = t1.parent_row(si)[v] {
                let w = g.edge_weight(v, p).unwrap();
                assert!(t1.dist_row(si)[v] >= w + t1.dist_row(si)[p]);
            }
        }
    }
}

#[test]
fn parallel_cluster_exploration_reproduces_the_constructions_level_0_clusters() {
    use en_congest_algos::cluster_explore::distributed_cluster_exploration;
    use en_graph::INFINITY;
    use en_routing::construction::{build_routing_scheme, ConstructionConfig};

    let g = erdos_renyi_connected(&GeneratorConfig::new(60, 17).with_weights(1, 40), 0.1);
    let built = build_routing_scheme(&g, &ConstructionConfig::new(3, 17)).unwrap();
    let hierarchy = &built.family.hierarchy;
    // Level-0 centres and their join thresholds d_G(v, A_1) from the pivot table.
    let centers = hierarchy.centers_at(0);
    let thresholds: Vec<u64> = (0..g.num_nodes())
        .map(|v| built.family.pivots[v][1].map_or(INFINITY, |(_, d)| d))
        .collect();
    let explored = distributed_cluster_exploration(&g, &centers, &thresholds, g.num_nodes());
    // The message-passing exploration and the construction's level-0 clusters
    // agree on membership and on the distances to the centre.
    for &c in &centers {
        let from_construction = built.family.cluster(c).expect("centre has a cluster");
        let from_protocol = &explored.clusters[&c];
        assert_eq!(
            from_construction.len(),
            from_protocol.members.len(),
            "centre {c}"
        );
        for v in from_construction.members() {
            let (dist, _) = from_protocol.members[&v];
            assert_eq!(
                dist,
                from_construction.root_dist(v).unwrap(),
                "centre {c} vertex {v}"
            );
        }
    }
    // The measured congestion stays within Claim 2's overlap bound.
    assert!(explored.stats.max_edge_backlog <= built.params.overlap_bound());
}

#[test]
fn congestion_is_paid_in_rounds() {
    // A protocol that bursts many messages over one edge must take
    // proportionally many rounds: the simulator cannot "cheat" the model.
    use en_congest::{Incoming, NodeContext, Outgoing, Protocol};
    struct Burst(usize);
    impl Protocol for Burst {
        type Msg = u64;
        fn init(&mut self, ctx: &NodeContext, out: &mut Vec<Outgoing<u64>>) {
            if ctx.id == 0 {
                out.extend((0..self.0 as u64).map(|i| Outgoing::new(0, i)));
            }
        }
        fn on_round(
            &mut self,
            _: &NodeContext,
            _: usize,
            _: &[Incoming<u64>],
            _: &mut Vec<Outgoing<u64>>,
        ) {
        }
    }
    let g = en_graph::WeightedGraph::from_edges(2, [(0, 1, 1)]).unwrap();
    let burst = 25;
    let mut sim = Simulator::new(&g, SimulationConfig::default(), |_| Burst(burst));
    let stats = sim.run();
    assert!(stats.rounds >= burst);
    assert_eq!(stats.max_edge_backlog, burst);
    assert_eq!(stats.messages, burst);
}
