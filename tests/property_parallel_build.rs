//! Property-based determinism suite for the parallel construction pipeline:
//! across random connected graphs, `k`, and seeds, a build sharded over 2 or
//! 8 worker threads must be *bit-identical* to the sequential (1-thread)
//! oracle — same wire snapshot bytes, same cluster forest, same pivots — and
//! its per-thread work accounting must sum to the sequential totals. The
//! kernels are additionally exercised in isolation, with the adversarial
//! threshold vectors of `property_restricted_clusters.rs` (zeros, small
//! finite values, infinities) that stress the tie-breaking paths.

use proptest::prelude::*;

use en_congest_algos::multi_source_hop_bounded_opts;
use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
use en_graph::{
    restricted_multi_source_csr_opts, BuildOptions, CsrGraph, Dist, NodeId, WeightedGraph, INFINITY,
};
use en_routing::construction::{build_routing_scheme_with, ConstructionConfig};
use en_wire::serialize;

fn arb_connected_graph() -> impl Strategy<Value = WeightedGraph> {
    (8usize..60, 0u64..10_000, 1u64..100).prop_map(|(n, seed, max_w)| {
        erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, max_w), 0.12)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// The full pipeline — preprocessing, cluster growing, forest pushes,
    /// scheme assembly — is bit-identical for threads ∈ {1, 2, 8}, for both
    /// the even-`k` (exact + large scales) and odd-`k` (middle level)
    /// families.
    #[test]
    fn full_build_matches_sequential_oracle(
        g in arb_connected_graph(),
        k in 2usize..4,
        seed in 0u64..1_000,
    ) {
        let config = ConstructionConfig::new(k, seed);
        let sequential =
            build_routing_scheme_with(&g, &config, &BuildOptions::new(1)).expect("builds");
        let oracle_bytes = serialize(&sequential.scheme);
        for threads in [2usize, 8] {
            let parallel = build_routing_scheme_with(&g, &config, &BuildOptions::new(threads))
                .expect("builds");
            prop_assert_eq!(
                &oracle_bytes,
                &serialize(&parallel.scheme),
                "wire bytes differ at {} threads",
                threads
            );
            prop_assert_eq!(&sequential.family.forest, &parallel.family.forest);
            prop_assert_eq!(&sequential.family.pivots, &parallel.family.pivots);
            prop_assert_eq!(
                sequential.build_stats.total_sources(),
                parallel.build_stats.total_sources(),
                "source totals differ at {} threads",
                threads
            );
            prop_assert_eq!(
                sequential.build_stats.total_members(),
                parallel.build_stats.total_members(),
                "member totals differ at {} threads",
                threads
            );
        }
    }

    /// The restricted cluster-growing kernel under adversarial thresholds:
    /// sharding over any thread count reproduces the sequential output cell
    /// for cell (the kernel result type is `Eq`), with invariant work totals.
    #[test]
    fn restricted_kernel_matches_sequential_oracle(
        g in arb_connected_graph(),
        thresholds_seed in proptest::collection::vec(0u64..200, 60..61),
        sources_mod in 2usize..9,
        threads in 2usize..9,
    ) {
        let n = g.num_nodes();
        let threshold: Vec<Dist> = (0..n)
            .map(|v| {
                // Mix of zeros, small finite values, and infinities.
                match thresholds_seed[v % thresholds_seed.len()] {
                    t if t < 10 => 0,
                    t if t >= 180 => INFINITY,
                    t => t,
                }
            })
            .collect();
        let sources: Vec<NodeId> = (0..n).filter(|v| v % sources_mod == 0).collect();
        let csr = CsrGraph::from_graph(&g);
        let (oracle, oracle_stats) =
            restricted_multi_source_csr_opts(&csr, &sources, &threshold, None, &BuildOptions::new(1));
        let (sharded, stats) = restricted_multi_source_csr_opts(
            &csr,
            &sources,
            &threshold,
            None,
            &BuildOptions::new(threads),
        );
        prop_assert_eq!(&oracle, &sharded, "{} threads", threads);
        prop_assert_eq!(oracle_stats.total_sources(), stats.total_sources());
        prop_assert_eq!(oracle_stats.total_members(), stats.total_members());
        prop_assert_eq!(oracle_stats.total_sources(), sources.len());
    }

    /// The Theorem-1 hop-bounded kernel: per-source distance rows and
    /// parents are identical however the source set is sharded.
    #[test]
    fn theorem1_kernel_matches_sequential_oracle(
        g in arb_connected_graph(),
        sources_mod in 1usize..5,
        hop_bound in 1usize..6,
        threads in 2usize..9,
    ) {
        let n = g.num_nodes();
        let sources: Vec<NodeId> = (0..n).filter(|v| v % sources_mod == 0).collect();
        let (oracle, oracle_stats) =
            multi_source_hop_bounded_opts(&g, &sources, hop_bound, 0.01, 4, &BuildOptions::new(1));
        let (sharded, stats) =
            multi_source_hop_bounded_opts(&g, &sources, hop_bound, 0.01, 4, &BuildOptions::new(threads));
        for s in 0..sources.len() {
            prop_assert_eq!(oracle.dist_row(s), sharded.dist_row(s), "row {}", s);
            for u in 0..n {
                prop_assert_eq!(
                    oracle.parent_towards(u, sources[s]),
                    sharded.parent_towards(u, sources[s]),
                    "parent of {} towards {}",
                    u,
                    sources[s]
                );
            }
        }
        prop_assert_eq!(oracle_stats.total_sources(), stats.total_sources());
        prop_assert_eq!(oracle_stats.total_members(), stats.total_members());
    }
}
