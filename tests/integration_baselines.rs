//! Integration tests for the Table 1 comparison: the paper's scheme against
//! the centralized Thorup–Zwick baseline and the LP13-style landmark baseline
//! on identical workloads — checking that the *shape* of Table 1 holds.

use en_graph::bfs::hop_diameter_estimate;
use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
use en_routing::baselines::formulas;
use en_routing::baselines::landmark::build_landmark_baseline;
use en_routing::baselines::tz::build_tz_baseline;
use en_routing::construction::{build_routing_scheme, ConstructionConfig};
use en_routing::stretch::measure_stretch_sampled;

#[test]
fn same_space_stretch_tradeoff_as_the_centralized_baseline() {
    // Table 1: our scheme matches [TZ01]'s table size O~(n^{1/k}) and stretch
    // 4k-5 up to lower-order terms, despite being built distributively.
    let n = 120;
    let g = erdos_renyi_connected(&GeneratorConfig::new(n, 3).with_weights(1, 60), 0.06);
    for k in [2usize, 3] {
        let ours = build_routing_scheme(&g, &ConstructionConfig::new(k, 3)).unwrap();
        let tz = build_tz_baseline(&g, k, 3).unwrap();
        // Approximate clusters are subsets of exact clusters, so per-vertex
        // tree counts are no larger.
        for v in g.nodes() {
            assert!(
                ours.scheme.trees_containing(v) <= tz.scheme.trees_containing(v),
                "k={k}: vertex {v} stores more trees than the exact baseline"
            );
        }
        // Both respect the 4k-5+o(1) stretch bound.
        let bound = ours.params.stretch_bound();
        let ours_stretch = measure_stretch_sampled(&g, &ours.scheme, 250, 17);
        let tz_stretch = measure_stretch_sampled(&g, &tz.scheme, 250, 17);
        assert!(ours_stretch.max_stretch <= bound + 1e-9);
        assert!(tz_stretch.max_stretch <= bound + 1e-9);
        assert_eq!(ours_stretch.failures + tz_stretch.failures, 0);
    }
}

#[test]
fn landmark_baseline_tables_do_not_shrink_but_ours_do() {
    let n = 150;
    let g = erdos_renyi_connected(&GeneratorConfig::new(n, 5).with_weights(1, 60), 0.05);
    let d = hop_diameter_estimate(&g);
    let mut ours_avg = Vec::new();
    let mut landmark_avg = Vec::new();
    for k in [2usize, 5] {
        let ours = build_routing_scheme(&g, &ConstructionConfig::new(k, 5)).unwrap();
        let lm = build_landmark_baseline(&g, k, 5, d).unwrap();
        ours_avg.push(ours.scheme.avg_table_words());
        landmark_avg.push(lm.scheme.avg_table_words());
    }
    // The landmark tables are k-independent by construction.
    assert!((landmark_avg[0] - landmark_avg[1]).abs() < 1e-9);
    // Ours shrink substantially from k=2 to k=5.
    assert!(
        ours_avg[1] < ours_avg[0],
        "our tables should shrink with k: {ours_avg:?}"
    );
}

#[test]
fn round_formulas_reproduce_table_1_ordering() {
    // At scale (where the asymptotics are meaningful) the Table 1 ordering is:
    // lower bound <= this paper <= LP13 <= LP15 variants <= TZ01's O(m).
    let n = 1 << 18;
    let k = 6;
    let d = 200;
    let m = 8 * n;
    let beta = 8;
    let lb = formulas::lower_bound_rounds(n, d);
    let ours = formulas::this_paper_rounds(n, k, d, beta);
    let lp13 = formulas::lp13_rounds(n, k, d);
    let lp15 = formulas::lp15_small_table_rounds(n, k, d);
    let tz = formulas::tz01_rounds(m);
    assert!(lb <= ours);
    assert!(ours <= lp15, "ours {ours} vs lp15 {lp15}");
    assert!(lp13 <= lp15);
    assert!(lp15 <= tz);
}

#[test]
fn odd_k_construction_charges_fewer_rounds_than_even_k_plus_one() {
    // The odd-k running time (n^{1/2+1/(2k)} + D) n^{o(1)} is below the even-k
    // (n^{1/2+1/k} + D) n^{o(1)} at the same k; check the formula and that the
    // measured construction does not contradict the ordering wildly.
    let n = 1 << 16;
    assert!(
        formulas::this_paper_odd_rounds(n, 5, 50, 16)
            < formulas::this_paper_even_rounds(n, 5, 50, 16)
    );
    let g = erdos_renyi_connected(&GeneratorConfig::new(130, 9).with_weights(1, 40), 0.05);
    let odd = build_routing_scheme(&g, &ConstructionConfig::new(5, 9)).unwrap();
    let even = build_routing_scheme(&g, &ConstructionConfig::new(4, 9)).unwrap();
    // Both constructions complete and produce non-trivial ledgers.
    assert!(odd.total_rounds() > 0);
    assert!(even.total_rounds() > 0);
}

#[test]
fn all_three_schemes_deliver_every_sampled_packet() {
    let g = erdos_renyi_connected(&GeneratorConfig::new(90, 13).with_weights(1, 50), 0.07);
    let d = hop_diameter_estimate(&g);
    let ours = build_routing_scheme(&g, &ConstructionConfig::new(3, 13)).unwrap();
    let tz = build_tz_baseline(&g, 3, 13).unwrap();
    let lm = build_landmark_baseline(&g, 3, 13, d).unwrap();
    for scheme in [&ours.scheme, &tz.scheme, &lm.scheme] {
        let report = measure_stretch_sampled(&g, scheme, 300, 23);
        assert_eq!(report.failures, 0);
        assert!(report.max_stretch >= 1.0);
    }
}
